// Tests for the application layer: KV store, YCSB, B+tree (property
// tests), MiniSQL engine, lock manager and the two app benchmarks.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "apps/btree.h"
#include "apps/kv_store.h"
#include "apps/memcached_bench.h"
#include "apps/minisql.h"
#include "apps/oltp_bench.h"
#include "apps/ycsb.h"
#include "core/host_system.h"
#include "platforms/factory.h"

namespace {

using apps::BPlusTree;
using apps::KvStore;
using apps::LockManager;
using apps::MiniSql;
using apps::YcsbWorkload;

TEST(KvStoreTest, SetGetRoundTrip) {
  KvStore store;
  EXPECT_TRUE(store.set("k1", "v1"));
  const auto v = store.get("k1");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "v1");
  EXPECT_EQ(store.size(), 1u);
}

TEST(KvStoreTest, MissingKeyReturnsNullopt) {
  KvStore store;
  EXPECT_FALSE(store.get("nope").has_value());
  EXPECT_EQ(store.hit_ratio(), 0.0);
}

TEST(KvStoreTest, OverwriteReplacesValueAndAccounting) {
  KvStore store;
  store.set("k", "short");
  const auto used_before = store.bytes_used();
  store.set("k", "a-considerably-longer-value");
  EXPECT_EQ(store.size(), 1u);
  EXPECT_GT(store.bytes_used(), used_before);
  EXPECT_EQ(*store.get("k"), "a-considerably-longer-value");
}

TEST(KvStoreTest, EraseRemoves) {
  KvStore store;
  store.set("k", "v");
  EXPECT_TRUE(store.erase("k"));
  EXPECT_FALSE(store.erase("k"));
  EXPECT_EQ(store.bytes_used(), 0u);
}

TEST(KvStoreTest, LruEvictionUnderMemoryPressure) {
  KvStore store(/*memory_limit_bytes=*/250);  // fits two ~107-byte items
  store.set("a", std::string(50, 'x'));
  store.set("b", std::string(50, 'x'));
  store.get("a");  // refresh a
  store.set("c", std::string(50, 'x'));  // evicts b (LRU)
  EXPECT_TRUE(store.get("a").has_value());
  EXPECT_FALSE(store.get("b").has_value());
  EXPECT_TRUE(store.get("c").has_value());
  EXPECT_GT(store.stats().evictions, 0u);
}

TEST(KvStoreTest, OversizedItemRejected) {
  KvStore store(100);
  EXPECT_FALSE(store.set("k", std::string(200, 'x')));
}

TEST(KvStoreTest, BytesNeverExceedLimit) {
  KvStore store(10'000);
  sim::Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    store.set("key" + std::to_string(rng.uniform_int(0, 99)),
              std::string(static_cast<std::size_t>(rng.uniform_int(10, 300)),
                          'v'));
    EXPECT_LE(store.bytes_used(), 10'000u);
  }
}

TEST(YcsbTest, WorkloadAMixIsBalanced) {
  YcsbWorkload workload(YcsbWorkload::workload_a());
  sim::Rng rng(5);
  int reads = 0, updates = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    const auto req = workload.next(rng);
    reads += req.op == apps::YcsbOp::kRead;
    updates += req.op == apps::YcsbOp::kUpdate;
  }
  EXPECT_NEAR(static_cast<double>(reads) / n, 0.5, 0.02);
  EXPECT_NEAR(static_cast<double>(updates) / n, 0.5, 0.02);
}

TEST(YcsbTest, WorkloadCIsReadOnly) {
  YcsbWorkload workload(YcsbWorkload::workload_c());
  sim::Rng rng(6);
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_EQ(workload.next(rng).op, apps::YcsbOp::kRead);
  }
}

TEST(YcsbTest, KeysAreDeterministic) {
  EXPECT_EQ(YcsbWorkload::key_for(42), YcsbWorkload::key_for(42));
  EXPECT_NE(YcsbWorkload::key_for(42), YcsbWorkload::key_for(43));
}

TEST(YcsbTest, ZipfianSkewOnKeys) {
  YcsbWorkload workload(YcsbWorkload::workload_a());
  sim::Rng rng(7);
  std::map<std::string, int> counts;
  for (int i = 0; i < 20'000; ++i) {
    ++counts[workload.next(rng).key];
  }
  int max_count = 0;
  for (const auto& [k, c] : counts) {
    max_count = std::max(max_count, c);
  }
  // The hottest key draws far more than uniform share.
  EXPECT_GT(max_count, 20'000 / 100'000 * 20);
  EXPECT_GT(max_count, 200);
}

TEST(BtreeTest, InsertFindBasic) {
  BPlusTree tree;
  tree.insert(5, "five");
  tree.insert(3, "three");
  tree.insert(8, "eight");
  EXPECT_EQ(*tree.find(5), "five");
  EXPECT_EQ(*tree.find(3), "three");
  EXPECT_FALSE(tree.find(4).has_value());
  EXPECT_EQ(tree.size(), 3u);
}

TEST(BtreeTest, OverwriteKeepsSize) {
  BPlusTree tree;
  tree.insert(1, "a");
  tree.insert(1, "b");
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(*tree.find(1), "b");
}

TEST(BtreeTest, EraseRemovesKey) {
  BPlusTree tree;
  tree.insert(1, "a");
  tree.insert(2, "b");
  EXPECT_TRUE(tree.erase(1));
  EXPECT_FALSE(tree.erase(1));
  EXPECT_FALSE(tree.find(1).has_value());
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BtreeTest, HeightGrowsLogarithmically) {
  BPlusTree tree(16);
  for (std::int64_t i = 0; i < 10'000; ++i) {
    tree.insert(i, "v");
  }
  EXPECT_GE(tree.height(), 3u);
  EXPECT_LE(tree.height(), 6u);
  tree.check_invariants();
}

TEST(BtreeTest, ScanIsOrderedAndBounded) {
  BPlusTree tree;
  for (std::int64_t i = 100; i >= 1; --i) {
    tree.insert(i, std::to_string(i));
  }
  std::vector<std::int64_t> seen;
  tree.scan(10, 20, [&](std::int64_t k, const std::string&) {
    seen.push_back(k);
    return true;
  });
  ASSERT_EQ(seen.size(), 11u);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], static_cast<std::int64_t>(10 + i));
  }
}

TEST(BtreeTest, ScanEarlyStop) {
  BPlusTree tree;
  for (std::int64_t i = 0; i < 50; ++i) {
    tree.insert(i, "v");
  }
  int visited = 0;
  tree.scan(0, 49, [&](std::int64_t, const std::string&) {
    return ++visited < 5;
  });
  EXPECT_EQ(visited, 5);
}

// Property test: random interleaved operations preserve invariants and
// agree with a std::map reference model.
class BtreeProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BtreeProperty, MatchesReferenceModel) {
  const auto [order, seed] = GetParam();
  BPlusTree tree(static_cast<std::size_t>(order));
  std::map<std::int64_t, std::string> reference;
  sim::Rng rng(static_cast<std::uint64_t>(seed));
  for (int op = 0; op < 4'000; ++op) {
    const std::int64_t key = rng.uniform_int(0, 500);
    const double p = rng.next_double();
    if (p < 0.55) {
      const std::string value = "v" + std::to_string(op);
      tree.insert(key, value);
      reference[key] = value;
    } else if (p < 0.8) {
      const bool tree_had = tree.erase(key);
      const bool ref_had = reference.erase(key) > 0;
      EXPECT_EQ(tree_had, ref_had);
    } else {
      const auto got = tree.find(key);
      const auto it = reference.find(key);
      EXPECT_EQ(got.has_value(), it != reference.end());
      if (got && it != reference.end()) {
        EXPECT_EQ(*got, it->second);
      }
    }
  }
  EXPECT_EQ(tree.size(), reference.size());
  tree.check_invariants();
  // Full scan agrees with the reference order.
  std::vector<std::int64_t> keys;
  tree.scan(-1, 501, [&](std::int64_t k, const std::string&) {
    keys.push_back(k);
    return true;
  });
  ASSERT_EQ(keys.size(), reference.size());
  auto it = reference.begin();
  for (const auto k : keys) {
    EXPECT_EQ(k, it->first);
    ++it;
  }
}

INSTANTIATE_TEST_SUITE_P(OrdersAndSeeds, BtreeProperty,
                         ::testing::Combine(::testing::Values(4, 8, 64, 128),
                                            ::testing::Values(1, 2, 3)));

TEST(LockManagerTest, ConflictDetected) {
  LockManager locks;
  EXPECT_TRUE(locks.lock(1, "t", 10));
  EXPECT_FALSE(locks.lock(2, "t", 10));
  EXPECT_EQ(locks.conflicts(), 1u);
  EXPECT_TRUE(locks.lock(2, "t", 11));  // different row is fine
}

TEST(LockManagerTest, ReentrantAndRelease) {
  LockManager locks;
  EXPECT_TRUE(locks.lock(1, "t", 10));
  EXPECT_TRUE(locks.lock(1, "t", 10));  // re-entrant
  locks.release_all(1);
  EXPECT_TRUE(locks.lock(2, "t", 10));
  EXPECT_EQ(locks.held(), 1u);
}

TEST(MiniSqlTest, PrepareLoadsAllTables) {
  MiniSql db(1'000);
  sim::Rng rng(9);
  db.prepare(rng);
  for (int i = 0; i < MiniSql::kTables; ++i) {
    EXPECT_EQ(db.table(i).rows(), 1'000u);
    db.table(i).tree().check_invariants();
  }
}

TEST(MiniSqlTest, TransactionTouchesExpectedFootprint) {
  MiniSql db(2'000);
  sim::Rng rng(10);
  db.prepare(rng);
  const auto fp = db.run_transaction(1, rng);
  EXPECT_GT(fp.btree_nodes, 10u);
  EXPECT_GT(fp.rows_touched, 10u);  // 10 selects + scan + DML
  EXPECT_GE(fp.wal_appends, 2u);
  EXPECT_GT(fp.page_reads, 0u);
}

TEST(MiniSqlTest, CardinalityStableAcrossTransactions) {
  MiniSql db(500);
  sim::Rng rng(11);
  db.prepare(rng);
  const std::size_t before =
      db.table(0).rows() + db.table(1).rows() + db.table(2).rows();
  for (std::uint64_t t = 1; t <= 50; ++t) {
    db.run_transaction(t, rng);
  }
  const std::size_t after =
      db.table(0).rows() + db.table(1).rows() + db.table(2).rows();
  // DELETE+INSERT per txn: total row count stays within a small band
  // (deletes can miss already-deleted ids).
  EXPECT_NEAR(static_cast<double>(after), static_cast<double>(before), 55.0);
}

TEST(MiniSqlTest, WalGrows) {
  MiniSql db(500);
  sim::Rng rng(12);
  db.prepare(rng);
  db.run_transaction(1, rng);
  EXPECT_GT(db.wal_bytes(), 0u);
}

struct AppBenchFixture : public ::testing::Test {
  core::HostSystem host;
  sim::Rng rng{55};
};

TEST_F(AppBenchFixture, MemcachedContainersBeatSecureContainers) {
  apps::MemcachedSpec spec;
  spec.sampled_ops = 600;
  spec.workload.record_count = 5'000;
  const apps::MemcachedBench bench(spec);
  auto docker = platforms::PlatformFactory::create(
      platforms::PlatformId::kDocker, host);
  auto kata = platforms::PlatformFactory::create(
      platforms::PlatformId::kKataContainers, host);
  sim::Clock c1, c2;
  const auto d = bench.run(*docker, c1, rng);
  const auto k = bench.run(*kata, c2, rng);
  EXPECT_GT(d.ops_per_second, k.ops_per_second * 2.0);  // Finding 18
  EXPECT_GT(d.hit_ratio, 0.95);  // load phase fully resident
}

TEST_F(AppBenchFixture, OltpPeaksNearFiftyForGuests) {
  apps::OltpSpec spec;
  spec.rows_per_table = 4'000;
  spec.sampled_txns = 30;
  const apps::OltpBench bench(spec);
  auto docker = platforms::PlatformFactory::create(
      platforms::PlatformId::kDocker, host);
  sim::Clock clock;
  const auto result = bench.run(*docker, clock, rng);
  EXPECT_GE(result.peak_threads(), 40);
  EXPECT_LE(result.peak_threads(), 60);
}

TEST_F(AppBenchFixture, OltpNativePeaksLate) {
  apps::OltpSpec spec;
  spec.rows_per_table = 4'000;
  spec.sampled_txns = 30;
  const apps::OltpBench bench(spec);
  auto native = platforms::PlatformFactory::create(
      platforms::PlatformId::kNative, host);
  sim::Clock clock;
  const auto result = bench.run(*native, clock, rng);
  EXPECT_GE(result.peak_threads(), 80);  // "peaks at around 110"
}

TEST_F(AppBenchFixture, OltpAbortsIncreaseUnderSmallTables) {
  // Tiny tables force row conflicts through the real lock manager.
  apps::OltpSpec spec;
  spec.rows_per_table = 50;
  spec.sampled_txns = 60;
  const apps::OltpBench bench(spec);
  auto native = platforms::PlatformFactory::create(
      platforms::PlatformId::kNative, host);
  sim::Clock clock;
  const auto result = bench.run(*native, clock, rng);
  double total_aborts = 0;
  for (const auto& p : result.curve) {
    total_aborts += p.abort_rate;
  }
  EXPECT_GT(total_aborts, 0.0);
}

}  // namespace
