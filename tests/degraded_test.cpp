// Tests for the degraded-mode fault family and the per-op retry/backoff
// engine (src/fleet/chaos.h degrade windows, src/fleet/engine.cpp
// issue_program_op): stall-stretch window math, KSM-unmerge resident-spike
// exactness under the peak audit, partial-partition pair attribution, the
// retry-vs-no-retry graceful-degradation differential on the degrade_storm
// builtin, crash-during-boot accounting, up-front validation of degrade
// shapes and retry knobs, and byte-identity of degraded runs across double
// runs and worker thread counts.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/host_system.h"
#include "fleet/chaos.h"
#include "fleet/cluster.h"
#include "fleet/engine.h"
#include "fleet/federation.h"
#include "fleet/placement.h"
#include "fleet/report.h"
#include "fleet/scenario.h"
#include "sim/time.h"

namespace {

using fleet::build_degrade_windows;
using fleet::build_pair_windows;
using fleet::Cluster;
using fleet::degraded_completion;
using fleet::DegradeWindow;
using fleet::FaultSpec;
using fleet::Fault;
using fleet::FederatedScenario;
using fleet::Federation;
using fleet::FederationReport;
using fleet::FleetEngine;
using fleet::FleetReport;
using fleet::pair_stalled_completion;
using fleet::PairWindow;
using fleet::resolve_faults;
using fleet::ResolvedFault;
using fleet::Scenario;

FleetReport run_cluster(const Scenario& s) {
  Cluster cluster(s.cluster);
  return cluster.run(s);
}

Fault disk_degrade_at(sim::Nanos time, int host, double multiplier,
                      sim::Nanos duration) {
  Fault f;
  f.kind = Fault::Kind::kDiskDegrade;
  f.time = time;
  f.host = host;
  f.degrade = multiplier;
  f.duration = duration;
  return f;
}

Fault mem_pressure_at(sim::Nanos time, int host, sim::Nanos duration) {
  Fault f;
  f.kind = Fault::Kind::kMemPressure;
  f.time = time;
  f.host = host;
  f.duration = duration;
  return f;
}

Fault partial_partition_at(sim::Nanos time, int host, int peer,
                           sim::Nanos duration) {
  Fault f;
  f.kind = Fault::Kind::kPartialPartition;
  f.time = time;
  f.host = host;
  f.peer = peer;
  f.duration = duration;
  return f;
}

// --- degraded_completion math ------------------------------------------------

TEST(DegradedTest, DegradedCompletionStretchesByDegradedShare) {
  const std::vector<DegradeWindow> w = {{100, 200, 4.0, 7}};
  int fault = -1;
  // 100 units undegraded to t=100; the window [100,200) completes only
  // 100/4 = 25 units, the remaining 25 finish after the heal at 225.
  EXPECT_EQ(degraded_completion(w, 0, 150, &fault), 225);
  EXPECT_EQ(fault, 7);
  // Finishing inside the window: the last 10 units run at 4x.
  EXPECT_EQ(degraded_completion(w, 0, 110, &fault), 140);
  EXPECT_EQ(fault, 7);
  // Entirely before the window: untouched, no attribution.
  EXPECT_EQ(degraded_completion(w, 0, 100, &fault), 100);
  EXPECT_EQ(fault, -1);
  // Entirely after the window: untouched.
  EXPECT_EQ(degraded_completion(w, 250, 40, &fault), 290);
  EXPECT_EQ(fault, -1);
  // No windows: degenerate identity.
  EXPECT_EQ(degraded_completion({}, 5, 10), 15);
}

TEST(DegradedTest, BuildDegradeWindowsSplitsOverlapsWorstWins) {
  ResolvedFault a;
  a.id = 0;
  a.kind = Fault::Kind::kDiskDegrade;
  a.time = 0;
  a.duration = 100;
  a.degrade = 2.0;
  a.hosts = {0};
  ResolvedFault b;
  b.id = 1;
  b.kind = Fault::Kind::kDiskDegrade;
  b.time = 50;
  b.duration = 100;  // [50, 150) x6 overlaps [0, 100) x2
  b.degrade = 6.0;
  b.hosts = {0};
  const auto windows = build_degrade_windows({a, b}, 2);
  ASSERT_EQ(windows.size(), 2u);
  ASSERT_EQ(windows[0].size(), 2u);
  EXPECT_EQ(windows[0][0].start, 0);
  EXPECT_EQ(windows[0][0].end, 50);
  EXPECT_EQ(windows[0][0].multiplier, 2.0);
  EXPECT_EQ(windows[0][0].fault, 0);
  // Where they overlap the worst multiplier wins, and the x6 pieces merge.
  EXPECT_EQ(windows[0][1].start, 50);
  EXPECT_EQ(windows[0][1].end, 150);
  EXPECT_EQ(windows[0][1].multiplier, 6.0);
  EXPECT_EQ(windows[0][1].fault, 1);
  EXPECT_TRUE(windows[1].empty());
}

TEST(DegradedTest, BuildDegradeWindowsEmptyWithoutDiskDegrades) {
  ResolvedFault crash;
  crash.kind = Fault::Kind::kCrash;
  crash.hosts = {0};
  EXPECT_TRUE(build_degrade_windows({crash}, 4).empty());
  EXPECT_TRUE(build_degrade_windows({}, 4).empty());
}

TEST(DegradedTest, PairStalledCompletionFreezesMatchingPairOnly) {
  const std::vector<PairWindow> w = {{100, 200, /*peer=*/1, /*fault=*/3}};
  int fault = -1;
  // Drawn peer 1: 50 units to the cut, frozen to 200, the rest end at 250.
  EXPECT_EQ(pair_stalled_completion(w, 1, 50, 100, &fault), 250);
  EXPECT_EQ(fault, 3);
  // A different far end never notices the cut.
  EXPECT_EQ(pair_stalled_completion(w, 2, 50, 100, &fault), 150);
  EXPECT_EQ(fault, -1);
  // Finishes exactly when the cut opens: not stalled.
  EXPECT_EQ(pair_stalled_completion(w, 1, 50, 50, &fault), 100);
  EXPECT_EQ(fault, -1);
}

TEST(DegradedTest, PairWindowsAreSymmetric) {
  ResolvedFault f;
  f.id = 0;
  f.kind = Fault::Kind::kPartialPartition;
  f.time = 10;
  f.duration = 20;
  f.hosts = {0};
  f.peer = 2;
  const auto windows = build_pair_windows({f}, 3);
  ASSERT_EQ(windows.size(), 3u);
  ASSERT_EQ(windows[0].size(), 1u);
  EXPECT_EQ(windows[0][0].peer, 2);
  ASSERT_EQ(windows[2].size(), 1u);
  EXPECT_EQ(windows[2][0].peer, 0);
  EXPECT_TRUE(windows[1].empty());
}

// --- Up-front validation -----------------------------------------------------

TEST(DegradedTest, ResolveFaultsRejectsMalformedDegradeShapes) {
  Scenario s = Scenario::program_storm(16, 2);
  // Disk degrade multiplier below 1 would *speed the disk up*.
  s.faults.timed = {disk_degrade_at(sim::millis(10), 0, 0.5, sim::millis(20))};
  EXPECT_THROW(resolve_faults(s, 2), std::invalid_argument);
  // Non-positive degrade window.
  s.faults.timed = {disk_degrade_at(sim::millis(10), 0, 4.0, 0)};
  EXPECT_THROW(resolve_faults(s, 2), std::invalid_argument);
  s.faults.timed = {mem_pressure_at(sim::millis(10), 0, -1)};
  EXPECT_THROW(resolve_faults(s, 2), std::invalid_argument);
  // A partial partition pairing a host with itself cuts nothing.
  s.faults.timed = {
      partial_partition_at(sim::millis(10), 1, 1, sim::millis(20))};
  EXPECT_THROW(resolve_faults(s, 2), std::invalid_argument);
  // Peer outside the initial topology.
  s.faults.timed = {
      partial_partition_at(sim::millis(10), 0, 5, sim::millis(20))};
  EXPECT_THROW(resolve_faults(s, 2), std::invalid_argument);
  s.faults.timed = {
      partial_partition_at(sim::millis(10), 0, -1, sim::millis(20))};
  EXPECT_THROW(resolve_faults(s, 2), std::invalid_argument);
}

TEST(DegradedTest, ResolveFaultsRejectsMalformedRandomDegrades) {
  Scenario s = Scenario::program_storm(16, 2);
  s.faults.random_disk_degrades = -1;
  s.faults.random_horizon = sim::millis(100);
  EXPECT_THROW(resolve_faults(s, 2), std::invalid_argument);
  // Mixed pool with every weight zero has nothing to draw.
  s.faults = FaultSpec{};
  s.faults.random_mixed = 2;
  s.faults.random_horizon = sim::millis(100);
  EXPECT_THROW(resolve_faults(s, 2), std::invalid_argument);
  // Negative weights are rejected even when another weight is positive.
  s.faults.weight_crash = 1.0;
  s.faults.weight_disk_degrade = -0.5;
  EXPECT_THROW(resolve_faults(s, 2), std::invalid_argument);
  // Partial partitions need a pair to cut.
  s.faults = FaultSpec{};
  s.faults.random_partial_partitions = 1;
  s.faults.random_horizon = sim::millis(100);
  EXPECT_THROW(resolve_faults(s, 1), std::invalid_argument);
  // Non-positive random degrade shape.
  s.faults = FaultSpec{};
  s.faults.random_disk_degrades = 1;
  s.faults.random_horizon = sim::millis(100);
  s.faults.random_degrade_multiplier = 0.5;
  EXPECT_THROW(resolve_faults(s, 2), std::invalid_argument);
  s.faults.random_degrade_multiplier = 4.0;
  s.faults.random_degrade_duration = 0;
  EXPECT_THROW(resolve_faults(s, 2), std::invalid_argument);
}

TEST(DegradedTest, RunRejectsMalformedRetryKnobs) {
  Scenario s = Scenario::program_storm(16, 2);
  s.op_max_retries = -1;
  EXPECT_THROW(run_cluster(s), std::invalid_argument);
  // Retries without a backoff base or without an SLO to retry against.
  s.op_max_retries = 2;
  s.op_backoff_base_ms = 0;
  EXPECT_THROW(run_cluster(s), std::invalid_argument);
  s.op_backoff_base_ms = sim::millis(1);
  s.op_slo_ms = 0;
  EXPECT_THROW(run_cluster(s), std::invalid_argument);
}

// --- Disk degrade ------------------------------------------------------------

TEST(DegradedTest, DiskDegradeStretchesOpsWithoutKillingAnyone) {
  // The window spans the whole run so host 0's disk-bound critical path
  // (log-writer fsyncs, cache-missing reads) is stretched end to end.
  Scenario s = Scenario::program_storm(96, 3);
  s.faults.timed = {
      disk_degrade_at(sim::millis(5), 0, 8.0, sim::millis(2000))};
  Scenario control = Scenario::program_storm(96, 3);
  const FleetReport r = run_cluster(s);
  const FleetReport c = run_cluster(control);

  ASSERT_EQ(r.degraded.size(), 1u);
  const auto& v = r.degraded[0];
  EXPECT_EQ(v.kind, "disk-degrade");
  EXPECT_EQ(v.multiplier, 8.0);
  EXPECT_EQ(v.hosts, std::vector<int>{0});
  // Disk-touching issues on host 0 were disturbed and sampled.
  EXPECT_GT(v.affected, 0);
  EXPECT_FALSE(v.added_ms.empty());
  EXPECT_GT(v.added_ms.percentile(99.0), 0.0);
  // Degraded, not dead: nobody crashes, nobody is lost.
  EXPECT_EQ(r.crash_victims, 0);
  EXPECT_EQ(r.tenants_admitted(), c.tenants_admitted());
  // Slower disks only ever stretch completions.
  EXPECT_GT(r.makespan, c.makespan);
  // The control renders no degraded section at all.
  EXPECT_EQ(c.to_text().find("degraded:"), std::string::npos);
  EXPECT_NE(r.to_text().find("degraded:"), std::string::npos);
  EXPECT_NE(r.to_text().find("disk-degrade"), std::string::npos);
}

// --- Memory pressure ---------------------------------------------------------

TEST(DegradedTest, MemPressureSpikesResidentAndAuditsExactly) {
  // The KSM unmerge storm re-expands every merged page; the incremental
  // fleet counters must track the spike (and the window-end re-merge)
  // exactly — set_peak_audit latches any drift.
  Scenario s = Scenario::program_storm(160, 3);
  s.faults.timed = {mem_pressure_at(sim::millis(60), 1, sim::millis(50))};
  for (const int threads : {1, 4}) {
    Scenario run = s;
    run.threads = threads;
    Cluster cluster(run.cluster);
    const auto policy = fleet::make_placement(run.placement);
    std::vector<core::HostSystem*> hosts;
    for (int i = 0; i < cluster.host_count(); ++i) {
      hosts.push_back(&cluster.host(i));
    }
    FleetEngine engine(hosts, policy.get(), &cluster);
    engine.set_peak_audit(true);
    const FleetReport r = engine.run(run);
    EXPECT_TRUE(engine.peak_audit_ok()) << "threads=" << threads;
    ASSERT_EQ(r.degraded.size(), 1u);
    EXPECT_EQ(r.degraded[0].kind, "mem-pressure");
    EXPECT_GT(r.degraded[0].resident_spike_bytes, 0u);
    EXPECT_GT(r.degraded[0].affected, 0);
    EXPECT_NE(r.to_text().find("resident spike"), std::string::npos);
  }
}

// --- Partial partition -------------------------------------------------------

TEST(DegradedTest, PartialPartitionStallsOnlyTheCutPair) {
  Scenario s = Scenario::program_storm(120, 4);
  s.faults.timed = {
      partial_partition_at(sim::millis(10), 0, 1, sim::millis(150))};
  const FleetReport r = run_cluster(s);
  ASSERT_EQ(r.degraded.size(), 1u);
  const auto& v = r.degraded[0];
  EXPECT_EQ(v.kind, "partial-partition");
  EXPECT_EQ(v.peer, 1);
  EXPECT_GT(v.affected, 0);
  EXPECT_FALSE(v.added_ms.empty());
  // Only the cut pair stalls: program network ops land their stall on the
  // issuing host, and hosts 2/3 never border the cut.
  EXPECT_GT(r.hosts[0].nic_stalls + r.hosts[1].nic_stalls, 0);
  EXPECT_EQ(r.hosts[2].nic_stalls, 0);
  EXPECT_EQ(r.hosts[3].nic_stalls, 0);
  EXPECT_EQ(r.crash_victims, 0);
  EXPECT_NE(r.to_text().find("partial-partition"), std::string::npos);
}

// --- Retry/backoff: graceful degradation instead of binary failure -----------

TEST(DegradedTest, RetryBackoffBeatsNoRetryUnderDegradeStorm) {
  // The committed differential: under the same fault schedule, per-op
  // retry/backoff (network re-issues redraw their peer and route around
  // the partial partition; disk re-issues land after the degrade window)
  // yields strictly fewer op SLO give-ups and strictly fewer permanently
  // lost tenants than the no-retry control.
  const Scenario s = Scenario::degrade_storm(180, 3);
  Scenario control = s;
  control.op_max_retries = 0;
  control.op_backoff_base_ms = 0;
  const FleetReport r = run_cluster(s);
  const FleetReport c = run_cluster(control);

  EXPECT_GT(r.op_retries, 0);
  EXPECT_EQ(c.op_retries, 0);
  EXPECT_GT(c.op_give_ups, 0);
  EXPECT_LT(r.op_give_ups, c.op_give_ups);
  EXPECT_GT(c.crash_lost, 0);
  EXPECT_LT(r.crash_lost, c.crash_lost);
  // Both runs carry the full degraded ledger.
  ASSERT_EQ(r.degraded.size(), 3u);
  ASSERT_EQ(c.degraded.size(), 3u);
  EXPECT_NE(r.to_text().find("degraded:"), std::string::npos);
  EXPECT_NE(r.to_text().find("op retries"), std::string::npos);
}

TEST(DegradedTest, RetryAccountingStaysSilentWithoutFaultsOrKnobs) {
  // program_storm sets an op SLO but neither degrade faults nor retry
  // knobs: the degraded ledger must stay empty and unrendered, keeping
  // pre-degrade goldens byte-identical.
  const FleetReport r = run_cluster(Scenario::program_storm(96, 3));
  EXPECT_TRUE(r.degraded.empty());
  EXPECT_EQ(r.op_retries, 0);
  EXPECT_EQ(r.op_give_ups, 0);
  EXPECT_EQ(r.to_text().find("degraded:"), std::string::npos);
}

// --- Crash during boot -------------------------------------------------------

TEST(DegradedTest, CrashDuringBootLosesPartialBoots) {
  // Crash the host mid-ramp, while plenty of tenants are still between
  // admission and kBootDone: their partial boots are lost and counted.
  Scenario s = Scenario::program_storm(160, 3);
  Fault crash;
  crash.kind = Fault::Kind::kCrash;
  crash.time = sim::millis(8);
  crash.host = 0;
  s.faults.timed = {crash};
  const FleetReport r = run_cluster(s);
  ASSERT_EQ(r.recovery.size(), 1u);
  const auto& v = r.recovery[0];
  EXPECT_GT(v.victims, 0);
  EXPECT_GT(v.boots_lost, 0);
  EXPECT_LE(v.boots_lost, v.victims);
  EXPECT_EQ(r.boots_lost, v.boots_lost);
  EXPECT_NE(r.to_text().find("partial boots lost"), std::string::npos);
}

// --- Random degrade schedules ------------------------------------------------

TEST(DegradedTest, RandomDegradeScheduleIsSeedDeterministic) {
  Scenario s = Scenario::program_storm(120, 4);
  s.faults.random_disk_degrades = 1;
  s.faults.random_mem_pressures = 1;
  s.faults.random_partial_partitions = 1;
  s.faults.random_mixed = 2;
  s.faults.weight_crash = 1.0;
  s.faults.weight_disk_degrade = 2.0;
  s.faults.weight_partial_partition = 2.0;
  s.faults.random_horizon = sim::millis(150);
  const FleetReport r = run_cluster(s);
  // Three explicit degrade draws, plus up to two mixed draws.
  EXPECT_GE(r.degraded.size(), 3u);
  EXPECT_LE(r.degraded.size(), 5u);
  EXPECT_EQ(run_cluster(s).to_text(), r.to_text());
  // A different seed draws a different schedule.
  Scenario other = s;
  other.seed ^= 0x5EED;
  const FleetReport ro = run_cluster(other);
  ASSERT_GE(ro.degraded.size(), 3u);
  EXPECT_NE(ro.degraded[0].time, r.degraded[0].time);
}

// --- Federation composition --------------------------------------------------

TEST(DegradedTest, FederationComposesDegradeStormsWithCellOutage) {
  // Every cell runs the full degrade storm; cell 0 additionally goes dark
  // mid-run. Degrade verdicts, retries and the outage re-route must
  // compose, and the whole thing must stay byte-reproducible.
  const Scenario base = Scenario::degrade_storm(120, 3);
  FederatedScenario fs = FederatedScenario::from_scenario(
      base, 2, fleet::RoutingKind::kLeastLoadedCell);
  fleet::CellOutage outage;
  outage.cell = 0;
  outage.time = sim::millis(120);
  fs.outages = {outage};
  Federation fed(fs.topology);
  const FederationReport r = fed.run(fs);
  const std::string text = r.to_text();
  EXPECT_NE(text.find("degraded:"), std::string::npos);
  EXPECT_NE(text.find("cell-outage"), std::string::npos);
  Federation fed2(fs.topology);
  EXPECT_EQ(fed2.run(fs).to_text(), text);
}

// --- Determinism -------------------------------------------------------------

TEST(DegradedTest, DegradeStormIsByteIdenticalAcrossRunsAndThreads) {
  for (const bool retries_on : {true, false}) {
    Scenario s = Scenario::degrade_storm(180, 3);
    if (!retries_on) {
      s.op_max_retries = 0;
      s.op_backoff_base_ms = 0;
    }
    s.threads = 1;
    const std::string sequential = run_cluster(s).to_text();
    EXPECT_EQ(run_cluster(s).to_text(), sequential);
    for (const int threads : {2, 8}) {
      s.threads = threads;
      EXPECT_EQ(run_cluster(s).to_text(), sequential)
          << "retries_on=" << retries_on << " threads=" << threads;
    }
  }
}

}  // namespace
