// Tests for the fault-injection subsystem (src/fleet/chaos.h): the
// crash-vs-graceful-drain differential (a crash loses the host's KSM
// sharing and page cache, a drain does not), rack-correlated crash
// determinism, partition windows stalling NIC-bound completions,
// recovery-verdict arithmetic, up-front scenario validation, the
// drain/crash same-instant race hardening, and byte-identity of every
// chaos builtin across runs and thread counts.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/host_system.h"
#include "fleet/chaos.h"
#include "fleet/cluster.h"
#include "fleet/engine.h"
#include "fleet/placement.h"
#include "fleet/report.h"
#include "fleet/scenario.h"

namespace {

using fleet::build_partition_windows;
using fleet::Cluster;
using fleet::Fault;
using fleet::FaultSpec;
using fleet::FleetEngine;
using fleet::FleetReport;
using fleet::HostEvent;
using fleet::PartitionWindow;
using fleet::PlacementKind;
using fleet::resolve_faults;
using fleet::ResolvedFault;
using fleet::Scenario;
using fleet::stalled_completion;
using fleet::validate_host_events;

FleetReport run_cluster(const Scenario& s) {
  Cluster cluster(s.cluster);
  return cluster.run(s);
}

/// A mid-size storm with phases long enough that a fault around 60 ms
/// catches plenty of tenants mid-flight.
Scenario chaos_storm(int tenants, int hosts) {
  Scenario s = Scenario::cluster_storm(tenants, hosts,
                                       PlacementKind::kLeastPressure);
  s.arrival = fleet::ArrivalPattern::kRamp;
  s.arrival_window = sim::millis(200);
  s.phases_per_tenant = 2;
  s.mean_phase_duration = sim::millis(120);
  return s;
}

Fault crash_at(sim::Nanos time, int host) {
  Fault f;
  f.kind = Fault::Kind::kCrash;
  f.time = time;
  f.host = host;
  return f;
}

// --- stalled_completion math -------------------------------------------------

TEST(ChaosTest, StalledCompletionStretchesByExactOverlap) {
  const std::vector<PartitionWindow> w = {{10, 20}};
  // Starts at 5, runs 5 of its 10 units, freezes for [10,20), finishes the
  // remaining 5 at 25.
  EXPECT_EQ(stalled_completion(w, 5, 10), 25);
  // Starting inside the window: all progress waits for the heal.
  EXPECT_EQ(stalled_completion(w, 12, 3), 23);
  // Finished before the window opens: untouched.
  EXPECT_EQ(stalled_completion(w, 0, 10), 10);
  // Starting after the window closed: untouched.
  EXPECT_EQ(stalled_completion(w, 25, 10), 35);
  // No windows at all: degenerate identity.
  EXPECT_EQ(stalled_completion({}, 7, 10), 17);
}

TEST(ChaosTest, StalledCompletionWalksMultipleWindows) {
  const std::vector<PartitionWindow> w = {{10, 20}, {30, 40}};
  // 5 units to the first window, frozen to 20, 10 more units to 30, frozen
  // to 40, the last 5 end at 45.
  EXPECT_EQ(stalled_completion(w, 5, 20), 45);
  // Ends exactly when the second window opens: not stalled by it.
  EXPECT_EQ(stalled_completion(w, 5, 15), 30);
}

TEST(ChaosTest, BuildPartitionWindowsSortsAndCoalesces) {
  ResolvedFault a;
  a.kind = Fault::Kind::kPartition;
  a.time = 30;
  a.duration = 20;
  a.hosts = {0};
  ResolvedFault b;
  b.kind = Fault::Kind::kPartition;
  b.time = 10;
  b.duration = 25;  // [10, 35) overlaps [30, 50): one window [10, 50)
  b.hosts = {0};
  const auto windows = build_partition_windows({a, b}, 2);
  ASSERT_EQ(windows.size(), 2u);
  ASSERT_EQ(windows[0].size(), 1u);
  EXPECT_EQ(windows[0][0].start, 10);
  EXPECT_EQ(windows[0][0].end, 50);
  EXPECT_TRUE(windows[1].empty());
}

TEST(ChaosTest, BuildPartitionWindowsEmptyWithoutPartitions) {
  ResolvedFault crash;
  crash.kind = Fault::Kind::kCrash;
  crash.hosts = {0};
  EXPECT_TRUE(build_partition_windows({crash}, 4).empty());
  EXPECT_TRUE(build_partition_windows({}, 4).empty());
}

// --- Up-front validation -----------------------------------------------------

TEST(ChaosTest, ResolveFaultsRejectsMalformedSpecs) {
  Scenario s = chaos_storm(8, 2);
  // Negative fault time.
  s.faults.timed = {crash_at(-1, 0)};
  EXPECT_THROW(resolve_faults(s, 2), std::invalid_argument);
  // Host outside the initial topology.
  s.faults.timed = {crash_at(sim::millis(10), 2)};
  EXPECT_THROW(resolve_faults(s, 2), std::invalid_argument);
  s.faults.timed = {crash_at(sim::millis(10), -1)};
  EXPECT_THROW(resolve_faults(s, 2), std::invalid_argument);
  // Unknown rack name.
  s.faults.timed = {crash_at(sim::millis(10), 0)};
  s.faults.timed[0].rack = "nope";
  EXPECT_THROW(resolve_faults(s, 2), std::invalid_argument);
  // Non-positive partition duration.
  s.faults.timed = {crash_at(sim::millis(10), 0)};
  s.faults.timed[0].kind = Fault::Kind::kPartition;
  s.faults.timed[0].duration = 0;
  EXPECT_THROW(resolve_faults(s, 2), std::invalid_argument);
  // Negative restart shape.
  s.faults.timed = {crash_at(sim::millis(10), 0)};
  s.faults.timed[0].restart_delay = -1;
  EXPECT_THROW(resolve_faults(s, 2), std::invalid_argument);
  // Negative random counts / missing horizon.
  s.faults.timed.clear();
  s.faults.random_crashes = -1;
  EXPECT_THROW(resolve_faults(s, 2), std::invalid_argument);
  s.faults.random_crashes = 1;
  s.faults.random_horizon = 0;
  EXPECT_THROW(resolve_faults(s, 2), std::invalid_argument);
}

TEST(ChaosTest, ResolveFaultsRejectsMalformedRacks) {
  Scenario s = chaos_storm(8, 2);
  s.faults.timed = {crash_at(sim::millis(10), 0)};
  s.cluster.racks = {{"", {0}}};
  EXPECT_THROW(resolve_faults(s, 2), std::invalid_argument);
  s.cluster.racks = {{"r0", {}}};
  EXPECT_THROW(resolve_faults(s, 2), std::invalid_argument);
  s.cluster.racks = {{"r0", {0, 5}}};  // member outside the topology
  EXPECT_THROW(resolve_faults(s, 2), std::invalid_argument);
}

TEST(ChaosTest, ResolveFaultsSortsByTimeAndAssignsIds) {
  Scenario s = chaos_storm(8, 4);
  s.faults.timed = {crash_at(sim::millis(50), 1), crash_at(sim::millis(10), 2)};
  const auto resolved = resolve_faults(s, 4);
  ASSERT_EQ(resolved.size(), 2u);
  EXPECT_EQ(resolved[0].id, 0);
  EXPECT_EQ(resolved[0].time, sim::millis(10));
  EXPECT_EQ(resolved[0].hosts, std::vector<int>{2});
  EXPECT_EQ(resolved[1].id, 1);
  EXPECT_EQ(resolved[1].time, sim::millis(50));
}

TEST(ChaosTest, ValidateHostEventsRejectsBadHooks) {
  Scenario s = chaos_storm(8, 2);
  HostEvent he;
  he.kind = HostEvent::Kind::kDrain;
  he.time = -1;
  s.host_events = {he};
  EXPECT_THROW(validate_host_events(s, 2), std::invalid_argument);
  he.time = sim::millis(10);
  he.host = -2;
  s.host_events = {he};
  EXPECT_THROW(validate_host_events(s, 2), std::invalid_argument);
  // A fixed 2-host topology can never contain host index 7.
  he.host = 7;
  s.host_events = {he};
  EXPECT_THROW(validate_host_events(s, 2), std::invalid_argument);
  // ...unless the autoscaler can grow the fleet past it.
  s.autoscale.enabled = true;
  s.autoscale.max_hosts = 16;
  EXPECT_NO_THROW(validate_host_events(s, 2));
  // An engine run surfaces the same validation up front.
  s.autoscale.enabled = false;
  EXPECT_THROW(run_cluster(s), std::invalid_argument);
}

TEST(ChaosTest, RunRejectsOutOfRangeFaultHost) {
  Scenario s = chaos_storm(8, 2);
  s.faults.timed = {crash_at(sim::millis(10), 5)};
  EXPECT_THROW(run_cluster(s), std::invalid_argument);
}

// --- Crash vs graceful drain -------------------------------------------------

TEST(ChaosTest, CrashLosesPageCacheAndKsmDrainDoesNot) {
  // Same storm, same target host, same instant: one run crashes host 0,
  // the other drains it gracefully. The drained host keeps its warm page
  // cache; the crashed host's cache and KSM stable tree die with it.
  Scenario crash = chaos_storm(160, 3);
  crash.faults.timed = {crash_at(sim::millis(60), 0)};

  Scenario drain = chaos_storm(160, 3);
  HostEvent he;
  he.kind = HostEvent::Kind::kDrain;
  he.time = sim::millis(60);
  he.host = 0;
  drain.host_events = {he};

  Cluster crashed_cluster(crash.cluster);
  const FleetReport cr = crashed_cluster.run(crash);
  Cluster drained_cluster(drain.cluster);
  const FleetReport dr = drained_cluster.run(drain);

  // Host-state differential, observed directly on the host models.
  EXPECT_EQ(crashed_cluster.host(0).page_cache().size_pages(), 0u);
  EXPECT_GT(drained_cluster.host(0).page_cache().size_pages(), 0u);

  // Report differential: markers, recovery section, migration accounting.
  ASSERT_GE(cr.hosts.size(), 1u);
  EXPECT_TRUE(cr.hosts[0].crashed);
  EXPECT_FALSE(cr.hosts[0].drained);
  EXPECT_TRUE(dr.hosts[0].drained);
  EXPECT_FALSE(dr.hosts[0].crashed);
  EXPECT_NE(cr.to_text().find("(! = host crashed mid-run)"), std::string::npos);
  EXPECT_NE(dr.to_text().find("(* = host was drained mid-run)"),
            std::string::npos);

  ASSERT_EQ(cr.recovery.size(), 1u);
  EXPECT_GT(cr.crash_victims, 0);
  EXPECT_TRUE(dr.recovery.empty());
  EXPECT_EQ(dr.to_text().find("chaos:"), std::string::npos);
  EXPECT_GT(dr.drain_migrations, 0);
  EXPECT_EQ(cr.drain_migrations, 0);

  // Victims re-arrive no earlier than the restart delay, and only count as
  // re-placed once their re-boot completes — every sample sits past it.
  ASSERT_FALSE(cr.replace_ms.empty());
  EXPECT_EQ(cr.replace_ms.fraction_below(
                sim::to_millis(crash.faults.timed[0].restart_delay)),
            0.0);
}

TEST(ChaosTest, IncrementalFleetCountersSurviveACrash) {
  // A crash drops a whole shard's resident set and KSM tree wholesale;
  // the incremental fleet counters must track that exactly (set_peak_audit
  // latches any drift from the re-summed reference).
  Scenario s = chaos_storm(200, 3);
  s.faults.timed = {crash_at(sim::millis(60), 1)};
  for (const int threads : {1, 4}) {
    Scenario run = s;
    run.threads = threads;
    Cluster cluster(run.cluster);
    const auto policy = fleet::make_placement(run.placement);
    std::vector<core::HostSystem*> hosts;
    for (int i = 0; i < cluster.host_count(); ++i) {
      hosts.push_back(&cluster.host(i));
    }
    FleetEngine engine(hosts, policy.get(), &cluster);
    engine.set_peak_audit(true);
    const FleetReport r = engine.run(run);
    EXPECT_TRUE(engine.peak_audit_ok()) << "threads=" << threads;
    EXPECT_GT(r.crash_victims, 0);
  }
}

TEST(ChaosTest, CrashingTheOnlyHostLosesUnplacedTenants) {
  // With no survivors there is nowhere to re-place: every victim (and
  // every later arrival) is rejected fleet-level, and the verdict records
  // them as permanently lost.
  Scenario s = Scenario::coldstart_storm(40);
  s.arrival = fleet::ArrivalPattern::kRamp;
  s.arrival_window = sim::millis(100);
  s.phases_per_tenant = 2;
  s.mean_phase_duration = sim::millis(200);
  s.faults.timed = {crash_at(sim::millis(50), 0)};
  const FleetReport r = run_cluster(s);
  ASSERT_EQ(r.recovery.size(), 1u);
  EXPECT_GT(r.crash_victims, 0);
  EXPECT_EQ(r.crash_readmitted, 0);
  EXPECT_EQ(r.crash_lost, r.crash_victims);
  EXPECT_EQ(r.readmission_fraction(), 0.0);
  EXPECT_TRUE(r.replace_ms.empty());
  EXPECT_GE(r.rejected, r.crash_victims);
}

// --- Rack-correlated faults --------------------------------------------------

TEST(ChaosTest, RackCrashHitsEveryMemberAtOneInstant) {
  const Scenario s = Scenario::rack_outage(240, 6);
  const FleetReport r = run_cluster(s);
  ASSERT_EQ(r.recovery.size(), 1u);
  const auto& v = r.recovery[0];
  EXPECT_EQ(v.kind, "crash");
  EXPECT_EQ(v.rack, "r0");
  EXPECT_EQ(v.hosts, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(v.time, sim::millis(100));
  for (const int h : {0, 1, 2}) {
    EXPECT_TRUE(r.hosts[static_cast<std::size_t>(h)].crashed) << h;
  }
  for (const int h : {3, 4, 5}) {
    EXPECT_FALSE(r.hosts[static_cast<std::size_t>(h)].crashed) << h;
  }
  EXPECT_GT(v.victims, 0);
  EXPECT_EQ(v.victims, v.readmitted + v.lost);
}

// --- Partitions --------------------------------------------------------------

TEST(ChaosTest, PartitionStallsNicPhases) {
  const Scenario s = Scenario::partition_storm(240, 4);
  Scenario control = s;
  control.faults = FaultSpec{};
  const FleetReport r = run_cluster(s);
  const FleetReport c = run_cluster(control);

  EXPECT_GT(r.nic_stalls, 0);
  EXPECT_EQ(c.nic_stalls, 0);
  // Stalls only ever stretch completions, so the partitioned run's
  // makespan can't beat the control's.
  EXPECT_GT(r.makespan, c.makespan);
  ASSERT_EQ(r.recovery.size(), 1u);
  EXPECT_EQ(r.recovery[0].kind, "partition");
  EXPECT_EQ(r.recovery[0].duration, sim::millis(40));
  EXPECT_EQ(r.crash_victims, 0);  // partitions kill nobody
  EXPECT_TRUE(c.recovery.empty());
  // Per-host stall attribution stays on the partitioned rack.
  int partitioned = 0;
  int untouched = 0;
  for (const auto& h : r.hosts) {
    if (h.host <= 1) {
      partitioned += h.nic_stalls;
    } else {
      untouched += h.nic_stalls;
    }
  }
  EXPECT_EQ(partitioned, r.nic_stalls);
  EXPECT_EQ(untouched, 0);
}

// --- Recovery verdict arithmetic --------------------------------------------

TEST(ChaosTest, RecoveryVerdictTotalsAreConsistent) {
  const Scenario s = Scenario::crash_recovery(600, 4, 8);
  const FleetReport r = run_cluster(s);
  ASSERT_EQ(r.recovery.size(), 1u);
  const auto& v = r.recovery[0];
  EXPECT_EQ(v.fault, 0);
  EXPECT_EQ(v.kind, "crash");
  EXPECT_EQ(v.victims, r.crash_victims);
  EXPECT_EQ(v.readmitted, r.crash_readmitted);
  EXPECT_EQ(v.lost, r.crash_lost);
  EXPECT_EQ(v.victims, v.readmitted + v.lost);
  EXPECT_EQ(r.replace_ms.size(), static_cast<std::size_t>(v.readmitted));
  EXPECT_GT(r.readmission_fraction(), 0.0);
  EXPECT_LE(r.readmission_fraction(), 1.0);
  EXPECT_GE(r.replace_ms.percentile(99), r.replace_ms.percentile(50));
  // The headline composition: the crash (not ambient load) trips the
  // watermark — the fault-free control run never scales out.
  bool scaled_out = false;
  for (const auto& a : r.autoscale_timeline) {
    scaled_out = scaled_out || a.action == "scale-out";
  }
  EXPECT_TRUE(scaled_out);
  Scenario control = s;
  control.faults = FaultSpec{};
  const FleetReport c = run_cluster(control);
  for (const auto& a : c.autoscale_timeline) {
    EXPECT_NE(a.action, "scale-out");
  }
}

// --- Drain/crash same-instant hardening -------------------------------------

TEST(ChaosTest, DrainThenCrashSameInstantIsSafe) {
  // A timed drain and a crash hit host 1 in the same timestamp batch (the
  // drain pops first: host events are queued before fault events). The
  // crash must skip the already-dead host instead of double-releasing its
  // tenants.
  Scenario s = chaos_storm(160, 3);
  HostEvent he;
  he.kind = HostEvent::Kind::kDrain;
  he.time = sim::millis(60);
  he.host = 1;
  s.host_events = {he};
  s.faults.timed = {crash_at(sim::millis(60), 1)};
  const FleetReport r = run_cluster(s);
  EXPECT_TRUE(r.hosts[1].drained);
  EXPECT_FALSE(r.hosts[1].crashed);
  EXPECT_GT(r.drain_migrations, 0);
  ASSERT_EQ(r.recovery.size(), 1u);
  EXPECT_EQ(r.recovery[0].victims, 0);  // nobody left to kill
  EXPECT_TRUE(r.recovery[0].hosts.empty());
  EXPECT_EQ(run_cluster(s).to_text(), r.to_text());
}

TEST(ChaosTest, CrashThenDrainOfDeadHostIsANoOp) {
  // The reverse race: the crash lands first, then a timed drain targets
  // the corpse. drain_shard must refuse; only the crash shows up.
  Scenario s = chaos_storm(160, 3);
  s.faults.timed = {crash_at(sim::millis(60), 1)};
  HostEvent he;
  he.kind = HostEvent::Kind::kDrain;
  he.time = sim::millis(60) + 1;
  he.host = 1;
  s.host_events = {he};
  const FleetReport r = run_cluster(s);
  EXPECT_TRUE(r.hosts[1].crashed);
  EXPECT_FALSE(r.hosts[1].drained);
  EXPECT_EQ(r.drain_migrations, 0);
  for (const auto& a : r.autoscale_timeline) {
    EXPECT_NE(a.action, "drain");
  }
  EXPECT_EQ(run_cluster(s).to_text(), r.to_text());
}

// --- Determinism -------------------------------------------------------------

TEST(ChaosTest, ChaosBuiltinsAreByteIdenticalAcrossRuns) {
  const Scenario builtins[] = {
      Scenario::crash_recovery(600, 4, 8),
      Scenario::rack_outage(240, 6),
      Scenario::partition_storm(240, 4),
  };
  for (const Scenario& s : builtins) {
    const std::string first = run_cluster(s).to_text();
    EXPECT_EQ(run_cluster(s).to_text(), first) << s.name;
    EXPECT_NE(first.find("chaos:"), std::string::npos) << s.name;
  }
}

TEST(ChaosTest, RandomFaultScheduleIsSeedDeterministic) {
  Scenario s = chaos_storm(160, 4);
  s.faults.random_crashes = 1;
  s.faults.random_partitions = 1;
  s.faults.random_horizon = sim::millis(150);
  const FleetReport r = run_cluster(s);
  EXPECT_EQ(r.recovery.size(), 2u);
  EXPECT_EQ(run_cluster(s).to_text(), r.to_text());
  // A different seed draws a different schedule (times differ with
  // overwhelming probability; equality here would mean the stream ignored
  // the seed).
  Scenario other = s;
  other.seed ^= 0x5EED;
  const FleetReport ro = run_cluster(other);
  ASSERT_EQ(ro.recovery.size(), 2u);
  EXPECT_NE(ro.recovery[0].time, r.recovery[0].time);
}

TEST(ChaosTest, ChaosBuiltinsAreThreadCountInvariant) {
  const Scenario builtins[] = {
      Scenario::crash_recovery(600, 4, 8),
      Scenario::rack_outage(240, 6),
      Scenario::partition_storm(240, 4),
  };
  for (const Scenario& base : builtins) {
    Scenario s = base;
    s.threads = 1;
    const std::string sequential = run_cluster(s).to_text();
    for (const int threads : {2, 8}) {
      s.threads = threads;
      EXPECT_EQ(run_cluster(s).to_text(), sequential)
          << base.name << " threads=" << threads;
    }
  }
}

}  // namespace
