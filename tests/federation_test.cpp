// Tests for the federation layer (src/fleet/federation.h): the 1-cell
// degenerate federation rendering byte-identical to Cluster, routing
// policy rank orderings (spec path) and walk/spec equivalence, forced
// inter-cell spills landing tenants a lone tiny cell would reject,
// spill-sum bookkeeping, cell-outage victims re-routing through the
// global router, and byte-identity of K-cell runs across double runs
// and worker thread counts.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "fleet/cluster.h"
#include "fleet/federation.h"
#include "fleet/placement.h"
#include "fleet/report.h"
#include "fleet/scenario.h"
#include "sim/time.h"

namespace {

using fleet::CellOutage;
using fleet::CellView;
using fleet::Cluster;
using fleet::FederatedScenario;
using fleet::Federation;
using fleet::FederationReport;
using fleet::FederationTopology;
using fleet::FleetReport;
using fleet::make_routing;
using fleet::PlacementKind;
using fleet::RouteRequest;
using fleet::RoutingKind;
using fleet::RoutingPolicy;
using fleet::Scenario;

FederationReport run_federation(const FederatedScenario& fs) {
  Federation fed(fs.topology);
  return fed.run(fs);
}

CellView view(int index, std::uint64_t cap, std::uint64_t resident,
              int active, int same_platform) {
  CellView v;
  v.index = index;
  v.ram_cap_bytes = cap;
  v.resident_bytes = resident;
  v.active_tenants = active;
  v.same_platform_tenants = same_platform;
  return v;
}

// --- 1-cell degenerate case ----------------------------------------------

TEST(FederationTest, OneCellFederationMatchesClusterByteForByte) {
  const Scenario s = Scenario::cluster_storm(96, 4, PlacementKind::kLeastLoaded);
  Cluster cluster(s.cluster);
  const FleetReport direct = cluster.run(s);

  for (const RoutingKind k : fleet::all_routing_kinds()) {
    const FederatedScenario fs = FederatedScenario::from_scenario(s, 1, k);
    const FederationReport fed = run_federation(fs);
    EXPECT_EQ(fed.to_text(), direct.to_text())
        << "routing " << fleet::routing_kind_name(k);
    EXPECT_EQ(fed.cells.size(), 1u);
    EXPECT_EQ(fed.spills, 0);
    EXPECT_EQ(fed.admitted, direct.tenants_admitted());
  }
}

TEST(FederationTest, OneCellChaosScenarioMatchesCluster) {
  const Scenario s = Scenario::crash_recovery(120, 4, 6);
  Cluster cluster(s.cluster);
  const FleetReport direct = cluster.run(s);
  const FederationReport fed =
      run_federation(FederatedScenario::from_scenario(s, 1));
  EXPECT_EQ(fed.to_text(), direct.to_text());
}

// --- Routing rank order (spec path) --------------------------------------

TEST(FederationTest, RoundRobinRoutingCyclesCells) {
  auto r = make_routing(RoutingKind::kRoundRobin);
  r->reset();
  const std::vector<CellView> cells = {view(0, 100, 0, 0, 0),
                                       view(1, 100, 0, 0, 0),
                                       view(2, 100, 0, 0, 0)};
  RouteRequest req;
  EXPECT_EQ(r->route(req, cells), 0);
  EXPECT_EQ(r->route(req, cells), 1);
  EXPECT_EQ(r->route(req, cells), 2);
  EXPECT_EQ(r->route(req, cells), 0);
}

TEST(FederationTest, LeastLoadedCellRanksByAggregateFreeRam) {
  auto r = make_routing(RoutingKind::kLeastLoadedCell);
  r->reset();
  // Free RAM: cell0 = 60, cell1 = 90, cell2 = 60 -> 1 first, then 0 before
  // 2 (index breaks the tie).
  const std::vector<CellView> cells = {view(0, 100, 40, 4, 0),
                                       view(1, 100, 10, 1, 0),
                                       view(2, 80, 20, 2, 0)};
  RouteRequest req;
  std::vector<int> ranked;
  r->rank_cells(req, cells, ranked);
  EXPECT_EQ(ranked, (std::vector<int>{1, 0, 2}));
}

TEST(FederationTest, PlatformAffinityPrefersCoTenantsThenFreeRam) {
  auto r = make_routing(RoutingKind::kPlatformAffinity);
  r->reset();
  // Cell 2 has co-tenants; cells 0 and 1 have none, so free RAM decides
  // between them (1 is freer).
  const std::vector<CellView> cells = {view(0, 100, 50, 5, 0),
                                       view(1, 100, 20, 2, 0),
                                       view(2, 100, 70, 7, 3)};
  RouteRequest req;
  std::vector<int> ranked;
  r->rank_cells(req, cells, ranked);
  EXPECT_EQ(ranked, (std::vector<int>{2, 1, 0}));
}

TEST(FederationTest, IncrementalWalkMatchesRankCellsSpec) {
  // Push identical state through both paths of each built-in policy and
  // pin walk order == snapshot-sort order (same invariant
  // placement_equivalence_test pins for hosts, one level up).
  const std::vector<CellView> cells = {view(0, 100, 40, 4, 1),
                                       view(1, 100, 10, 1, 0),
                                       view(2, 80, 20, 2, 2)};
  for (const RoutingKind kind : fleet::all_routing_kinds()) {
    auto spec = make_routing(kind);
    auto inc = make_routing(kind);
    spec->reset();
    inc->reset();
    ASSERT_TRUE(inc->incremental()) << fleet::routing_kind_name(kind);
    for (const CellView& v : cells) {
      fleet::CellState st;
      st.index = v.index;
      st.ram_cap_bytes = v.ram_cap_bytes;
      st.resident_bytes = v.resident_bytes;
      st.active_tenants = v.active_tenants;
      inc->cell_updated(st);
      inc->platform_count_changed(v.index,
                                  platforms::PlatformId::kQemuKvm,
                                  v.same_platform_tenants);
    }
    RouteRequest req;
    req.platform_id = platforms::PlatformId::kQemuKvm;
    std::vector<int> ranked;
    spec->rank_cells(req, cells, ranked);
    inc->walk_begin(req);
    std::vector<int> walked;
    for (int c = inc->walk_next(); c >= 0; c = inc->walk_next()) {
      walked.push_back(c);
    }
    EXPECT_EQ(walked, ranked) << fleet::routing_kind_name(kind);
  }
}

// --- Inter-cell spill -----------------------------------------------------

// A RAM-starved cell plus a roomy one: round-robin sends half the storm at
// the tiny cell, admission refuses the overflow, and the router walks the
// refused tenants into the big cell.
FederatedScenario tiny_plus_roomy(int tenants) {
  Scenario base = Scenario::cluster_storm(tenants, 1, PlacementKind::kLeastLoaded);
  FederatedScenario fs = FederatedScenario::from_scenario(
      base, 2, RoutingKind::kRoundRobin);
  fs.topology.cells[0].spec.host_ram_override_bytes = 3ull << 30;
  fs.topology.cells[0].region = "edge";
  fs.topology.cells[1].spec.cluster.host_count = 4;
  fs.topology.cells[1].region = "core";
  return fs;
}

TEST(FederationTest, RefusedTenantsSpillToTheNextRankedCell) {
  const FederatedScenario fs = tiny_plus_roomy(96);
  const FederationReport fed = run_federation(fs);

  ASSERT_EQ(fed.cells.size(), 2u);
  EXPECT_GT(fed.spills, 0);
  EXPECT_GT(fed.cells[0].spill_out, 0);
  EXPECT_GT(fed.cells[1].spill_in, 0);

  // Differential: the tiny cell alone rejects what the federation saves.
  Scenario alone = Scenario::cluster_storm(96, 1, PlacementKind::kLeastLoaded);
  alone.host_ram_override_bytes = 3ull << 30;
  Cluster cluster(alone.cluster);
  const FleetReport lone = cluster.run(alone);
  EXPECT_GT(lone.rejected, 0);
  EXPECT_GT(fed.admitted, lone.tenants_admitted());
}

TEST(FederationTest, SpillSumsBalanceAcrossCells) {
  const FederationReport fed = run_federation(tiny_plus_roomy(96));
  int in = 0;
  int out = 0;
  int routed = 0;
  for (const FederationReport::CellRollup& c : fed.cells) {
    in += c.spill_in;
    out += c.spill_out;
    routed += c.routed;
  }
  EXPECT_EQ(in, fed.spills);
  EXPECT_EQ(out, fed.spills);
  EXPECT_EQ(routed, fed.tenants);  // every tenant sits in exactly one cell
  EXPECT_EQ(fed.admitted + fed.rejected, fed.tenants);
}

// --- Cell outage ----------------------------------------------------------

FederatedScenario outage_federation(int tenants) {
  Scenario base = Scenario::cluster_storm(tenants, 3, PlacementKind::kLeastLoaded);
  base.replace_slo_ms = sim::seconds(30);
  FederatedScenario fs = FederatedScenario::from_scenario(
      base, 3, RoutingKind::kLeastLoadedCell);
  CellOutage o;
  o.cell = 1;
  o.time = sim::millis(40);
  fs.outages.push_back(o);
  return fs;
}

TEST(FederationTest, CellOutageVictimsRerouteThroughTheRouter) {
  const FederationReport fed = run_federation(outage_federation(120));

  ASSERT_EQ(fed.cells.size(), 3u);
  EXPECT_TRUE(fed.cells[1].outage);
  EXPECT_FALSE(fed.cells[0].outage);
  EXPECT_GT(fed.outage_victims, 0);
  EXPECT_EQ(fed.outage_rerouted + fed.outage_lost, fed.outage_victims);
  // Two healthy cells have the headroom: everyone booted somewhere else.
  EXPECT_EQ(fed.outage_lost, 0);
  EXPECT_EQ(static_cast<int>(fed.outage_replace_ms.size()),
            fed.outage_rerouted);
  EXPECT_TRUE(fed.recovery_slo_pass());
  const std::string text = fed.to_text();
  EXPECT_NE(text.find("cell outages:"), std::string::npos);
  EXPECT_NE(text.find("recovery SLO:"), std::string::npos);
  EXPECT_NE(text.find("OUTAGE"), std::string::npos);
}

TEST(FederationTest, OutageRunsAreByteIdenticalAcrossRuns) {
  const FederatedScenario fs = outage_federation(120);
  const FederationReport a = run_federation(fs);
  const FederationReport b = run_federation(fs);
  EXPECT_EQ(a.to_text(), b.to_text());
  EXPECT_EQ(a.events_processed, b.events_processed);
}

// --- Determinism ----------------------------------------------------------

TEST(FederationTest, KCellRunsAreByteIdenticalAcrossRunsAndThreads) {
  for (const RoutingKind kind : fleet::all_routing_kinds()) {
    FederatedScenario fs = FederatedScenario::federation_storm(90, 3, 2, kind);
    const std::string baseline = run_federation(fs).to_text();
    EXPECT_EQ(run_federation(fs).to_text(), baseline)
        << fleet::routing_kind_name(kind);
    for (const int threads : {2, 8}) {
      for (fleet::CellDesc& cell : fs.topology.cells) {
        cell.spec.threads = threads;
      }
      EXPECT_EQ(run_federation(fs).to_text(), baseline)
          << fleet::routing_kind_name(kind) << " threads " << threads;
    }
  }
}

// --- Validation -----------------------------------------------------------

TEST(FederationTest, MalformedScenariosAreRejectedUpFront) {
  EXPECT_THROW(Federation(FederationTopology{}), std::invalid_argument);
  EXPECT_THROW(FederationTopology::uniform(0, fleet::CellSpec{}),
               std::invalid_argument);

  FederatedScenario fs =
      FederatedScenario::from_scenario(Scenario::cluster_storm(16, 2), 2);
  CellOutage o;
  o.cell = 5;  // no such cell
  fs.outages.push_back(o);
  Federation fed(fs.topology);
  EXPECT_THROW(fed.run(fs), std::invalid_argument);
}

}  // namespace
