// Tests for the host kernel model: registry, ftrace, syscalls, page cache,
// block device, NIC.
#include <gtest/gtest.h>

#include <set>
#include <string_view>

#include "hostk/block_device.h"
#include "hostk/ftrace.h"
#include "hostk/host_kernel.h"
#include "hostk/kernel_function.h"
#include "hostk/nic.h"
#include "hostk/page_cache.h"
#include "hostk/syscall.h"
#include "sim/clock.h"
#include "stats/summary.h"

namespace {

using hostk::BlockDevice;
using hostk::BlockDeviceSpec;
using hostk::Ftrace;
using hostk::HostKernel;
using hostk::KernelFunctionRegistry;
using hostk::Nic;
using hostk::PageCache;
using hostk::PageKey;
using hostk::Subsystem;
using hostk::Syscall;

TEST(RegistryTest, CatalogIsSubstantial) {
  KernelFunctionRegistry reg;
  EXPECT_GT(reg.size(), 300u);
}

TEST(RegistryTest, LookupRoundTrips) {
  KernelFunctionRegistry reg;
  const auto id = reg.id_of("vfs_read");
  EXPECT_EQ(reg.function(id).name, "vfs_read");
  EXPECT_EQ(reg.function(id).subsystem, Subsystem::kVfs);
}

TEST(RegistryTest, UnknownSymbolThrows) {
  KernelFunctionRegistry reg;
  EXPECT_THROW(reg.id_of("not_a_kernel_function"), std::out_of_range);
  EXPECT_FALSE(reg.contains("not_a_kernel_function"));
  EXPECT_TRUE(reg.contains("schedule"));
}

TEST(RegistryTest, EverySubsystemPopulated) {
  KernelFunctionRegistry reg;
  for (auto s : {Subsystem::kSched, Subsystem::kMm, Subsystem::kVfs,
                 Subsystem::kExt4, Subsystem::kBlock, Subsystem::kNet,
                 Subsystem::kKvm, Subsystem::kNamespace, Subsystem::kCgroup,
                 Subsystem::kSecurity, Subsystem::kIpc, Subsystem::kTime,
                 Subsystem::kIrq, Subsystem::kSignal, Subsystem::kVsock,
                 Subsystem::kMisc}) {
    EXPECT_FALSE(reg.functions_in(s).empty())
        << "empty subsystem: " << hostk::subsystem_name(s);
  }
}

TEST(RegistryTest, IdsAreDense) {
  KernelFunctionRegistry reg;
  for (std::size_t i = 0; i < reg.size(); ++i) {
    EXPECT_EQ(reg.function(static_cast<hostk::FunctionId>(i)).id, i);
  }
}

TEST(FtraceTest, RecordsOnlyWhileRecording) {
  KernelFunctionRegistry reg;
  Ftrace ft(reg);
  const auto fn = reg.id_of("schedule");
  ft.record(fn);  // not recording yet
  EXPECT_EQ(ft.distinct_functions(), 0u);
  ft.start();
  ft.record(fn, 3);
  ft.stop();
  ft.record(fn);  // after stop
  EXPECT_EQ(ft.distinct_functions(), 1u);
  EXPECT_EQ(ft.count_of(fn), 3u);
  EXPECT_EQ(ft.total_invocations(), 3u);
}

TEST(FtraceTest, StartClearsPreviousCapture) {
  KernelFunctionRegistry reg;
  Ftrace ft(reg);
  ft.start();
  ft.record(reg.id_of("schedule"));
  ft.start();
  EXPECT_EQ(ft.distinct_functions(), 0u);
}

TEST(FtraceTest, SubsystemBreakdown) {
  KernelFunctionRegistry reg;
  Ftrace ft(reg);
  ft.start();
  ft.record(reg.id_of("schedule"));
  ft.record(reg.id_of("pick_next_task_fair"));
  ft.record(reg.id_of("vfs_read"));
  const auto breakdown = ft.distinct_by_subsystem();
  EXPECT_EQ(breakdown.at(Subsystem::kSched), 2u);
  EXPECT_EQ(breakdown.at(Subsystem::kVfs), 1u);
}

TEST(HostKernelTest, SyscallChargesCost) {
  HostKernel hk;
  sim::Rng rng(1);
  sim::Clock clock;
  hk.invoke_on(clock, Syscall::kRead, rng);
  EXPECT_GT(clock.now(), 0);
}

TEST(HostKernelTest, SyscallRecordsFunctionsWhenTracing) {
  HostKernel hk;
  sim::Rng rng(1);
  hk.ftrace().start();
  hk.invoke(Syscall::kRead, rng);
  hk.ftrace().stop();
  const auto& reg = hk.registry();
  EXPECT_GT(hk.ftrace().count_of(reg.id_of("vfs_read")), 0u);
  EXPECT_GT(hk.ftrace().count_of(reg.id_of("entry_SYSCALL_64")), 0u);
}

TEST(HostKernelTest, NoTraceWhenNotRecording) {
  HostKernel hk;
  sim::Rng rng(1);
  hk.invoke(Syscall::kRead, rng);
  EXPECT_EQ(hk.ftrace().distinct_functions(), 0u);
}

TEST(HostKernelTest, BatchedInvocationScalesCostAndCounts) {
  HostKernel hk;
  sim::Rng rng(1);
  hk.ftrace().start();
  hk.invoke(Syscall::kSendto, rng, 100);
  const auto& reg = hk.registry();
  EXPECT_EQ(hk.ftrace().count_of(reg.id_of("tcp_sendmsg")), 100u);
}

TEST(HostKernelTest, ZeroCountIsFree) {
  HostKernel hk;
  sim::Rng rng(1);
  EXPECT_EQ(hk.invoke(Syscall::kRead, rng, 0), 0);
}

TEST(HostKernelTest, EverySyscallHasSpecAndEntryPath) {
  HostKernel hk;
  const auto entry = hk.registry().id_of("entry_SYSCALL_64");
  for (std::size_t i = 0; i < hostk::kSyscallCount; ++i) {
    const auto sc = static_cast<Syscall>(i);
    const auto& spec = hk.spec(sc);
    EXPECT_FALSE(spec.functions.empty()) << hostk::syscall_name(sc);
    EXPECT_EQ(spec.functions.front().fn, entry) << hostk::syscall_name(sc);
    EXPECT_GE(hk.mean_cost(sc), 0) << hostk::syscall_name(sc);
  }
}

TEST(HostKernelTest, KvmRunHitsKvmSubsystem) {
  HostKernel hk;
  sim::Rng rng(1);
  hk.ftrace().start();
  hk.invoke(Syscall::kKvmRun, rng);
  const auto breakdown = hk.ftrace().distinct_by_subsystem();
  EXPECT_GT(breakdown.at(Subsystem::kKvm), 10u);
}

TEST(HostKernelTest, SyscallNamesAreUniqueAndNonEmpty) {
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < hostk::kSyscallCount; ++i) {
    const auto name = hostk::syscall_name(static_cast<Syscall>(i));
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "unknown");
    EXPECT_TRUE(names.insert(name).second) << "duplicate: " << name;
  }
}

TEST(PageCacheTest, MissThenHit) {
  PageCache cache(1 << 20);
  const PageKey k{1, 0};
  EXPECT_FALSE(cache.access(k));
  cache.insert(k);
  EXPECT_TRUE(cache.access(k));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PageCacheTest, LruEviction) {
  PageCache cache(2 * PageCache::kPageSize);
  cache.insert({1, 0});
  cache.insert({1, 1});
  cache.insert({1, 2});  // evicts {1,0}
  EXPECT_FALSE(cache.access({1, 0}));
  EXPECT_TRUE(cache.access({1, 1}));
  EXPECT_TRUE(cache.access({1, 2}));
}

TEST(PageCacheTest, AccessPromotes) {
  PageCache cache(2 * PageCache::kPageSize);
  cache.insert({1, 0});
  cache.insert({1, 1});
  cache.access({1, 0});   // promote page 0
  cache.insert({1, 2});   // should evict page 1 (LRU), not page 0
  EXPECT_TRUE(cache.resident(1, 0, 1));
  EXPECT_FALSE(cache.resident(1, PageCache::kPageSize, 1));
}

TEST(PageCacheTest, RangeAccessCountsMisses) {
  PageCache cache(1 << 20);
  // 3 pages: offset 100 .. 100+9000 spans pages 0,1,2.
  EXPECT_EQ(cache.access_range(7, 100, 9000), 3u);
  EXPECT_EQ(cache.access_range(7, 100, 9000), 0u);
}

TEST(PageCacheTest, DropCachesEmptiesEverything) {
  PageCache cache(1 << 20);
  cache.access_range(1, 0, 65536);
  EXPECT_GT(cache.size_pages(), 0u);
  cache.drop_caches();
  EXPECT_EQ(cache.size_pages(), 0u);
  EXPECT_FALSE(cache.resident(1, 0, 1));
}

TEST(PageCacheTest, ZeroCapacityNeverCaches) {
  PageCache cache(0);
  cache.insert({1, 0});
  EXPECT_FALSE(cache.access({1, 0}));
}

TEST(PageCacheTest, ZeroLengthRange) {
  PageCache cache(1 << 20);
  EXPECT_EQ(cache.access_range(1, 0, 0), 0u);
  EXPECT_TRUE(cache.resident(1, 0, 0));
}

TEST(BlockDeviceTest, LargerTransfersTakeLonger) {
  BlockDevice dev;
  sim::Rng rng(1);
  double small = 0, large = 0;
  for (int i = 0; i < 200; ++i) {
    small += static_cast<double>(dev.read(4096, rng));
    large += static_cast<double>(dev.read(1 << 20, rng));
  }
  EXPECT_GT(large, small * 2);
}

TEST(BlockDeviceTest, ThroughputBoundedByBandwidth) {
  BlockDeviceSpec spec;
  BlockDevice dev(spec);
  sim::Rng rng(2);
  const std::uint64_t bytes = 64ull << 20;
  const auto t = dev.read(bytes, rng);
  const double achieved = static_cast<double>(bytes) / sim::to_seconds(t);
  EXPECT_LT(achieved, spec.read_bw_bytes_per_sec);
  EXPECT_GT(achieved, spec.read_bw_bytes_per_sec * 0.9);
}

TEST(BlockDeviceTest, WritesNoisierThanReads) {
  BlockDevice dev;
  sim::Rng rng(3);
  stats::Summary r, w;
  for (int i = 0; i < 2000; ++i) {
    r.add(static_cast<double>(dev.read(4096, rng)));
    w.add(static_cast<double>(dev.write(4096, rng)));
  }
  EXPECT_GT(w.cv(), r.cv());
}

TEST(BlockDeviceTest, AccountsBytes) {
  BlockDevice dev;
  sim::Rng rng(4);
  dev.read(1000, rng);
  dev.write(500, rng);
  EXPECT_EQ(dev.bytes_read(), 1000u);
  EXPECT_EQ(dev.bytes_written(), 500u);
}

TEST(NicTest, PacketCount) {
  Nic nic;
  EXPECT_EQ(nic.packets_for(0), 0u);
  EXPECT_EQ(nic.packets_for(1), 1u);
  EXPECT_EQ(nic.packets_for(1500), 1u);
  EXPECT_EQ(nic.packets_for(1501), 2u);
}

TEST(NicTest, LineRateIsUpperBound) {
  Nic nic;
  sim::Rng rng(5);
  const std::uint64_t bytes = 128ull << 20;
  const auto t = nic.transfer_time(bytes, rng);
  const double gbps = static_cast<double>(bytes) * 8.0 / sim::to_seconds(t) / 1e9;
  EXPECT_LT(gbps, 40.0);
  EXPECT_GT(gbps, 30.0);  // per-packet cost should not dominate at MTU 1500
}

TEST(NicTest, LatencyNearBase) {
  Nic nic;
  sim::Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    const auto l = nic.latency(rng);
    EXPECT_GE(l, nic.spec().base_latency);
    EXPECT_LE(l, nic.spec().base_latency + sim::micros(2));
  }
}

}  // namespace
