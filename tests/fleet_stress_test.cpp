// Stress tests for the batched EventQueue: 100k-event storms with heavy
// timestamp collisions must preserve the (time, seq) contract — global time
// order with FIFO tie-breaking inside every same-timestamp batch — and the
// batch machinery must survive interleaved push/pop around partially
// drained batches.
#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <random>
#include <vector>

#include "fleet/event_queue.h"

namespace {

using fleet::Event;
using fleet::EventKind;
using fleet::EventQueue;

TEST(EventQueueStressTest, HundredThousandEventsPopInTimeThenFifoOrder) {
  // Draw times from a small set so batches grow to thousands of events.
  constexpr int kEvents = 100'000;
  constexpr int kDistinctTimes = 64;
  EventQueue q;
  std::mt19937 rng(42);
  for (int i = 0; i < kEvents; ++i) {
    const auto t = sim::millis(static_cast<double>(rng() % kDistinctTimes));
    q.push(t, static_cast<std::uint64_t>(i), EventKind::kArrival);
  }
  ASSERT_EQ(q.size(), static_cast<std::size_t>(kEvents));

  sim::Nanos last_time = -1;
  std::uint64_t last_seq_in_batch = 0;
  int popped = 0;
  while (!q.empty()) {
    const Event e = q.pop();
    ASSERT_GE(e.time, last_time);
    if (e.time == last_time) {
      // FIFO among simultaneous events: seq strictly increases inside a
      // same-timestamp batch (seq == push order == tenant id here).
      ASSERT_GT(e.seq, last_seq_in_batch);
      ASSERT_GT(e.tenant, last_seq_in_batch);
    }
    last_time = e.time;
    last_seq_in_batch = e.seq;
    ++popped;
  }
  EXPECT_EQ(popped, kEvents);
}

TEST(EventQueueStressTest, InterleavedPushPopMatchesReferenceHeap) {
  // Differential check against a plain (time, seq) priority queue, with
  // pushes landing on partially drained batches (same time as the event
  // just popped) — the regression case for batch retirement/reopen.
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };
  EventQueue q;
  std::priority_queue<Event, std::vector<Event>, Later> ref;
  std::mt19937 rng(7);
  std::uint64_t ref_seq = 0;
  const auto push_both = [&](sim::Nanos t, std::uint64_t tenant) {
    q.push(t, tenant, EventKind::kPhaseDone);
    ref.push(Event{t, ref_seq++, tenant, EventKind::kPhaseDone});
  };

  sim::Nanos now = 0;
  for (int round = 0; round < 20'000; ++round) {
    if (ref.empty() || rng() % 3 != 0) {
      // Schedule at or after "now", frequently colliding exactly on it.
      const sim::Nanos t = (rng() % 4 == 0) ? now : now + sim::nanos(rng() % 50);
      push_both(t, rng() % 1000);
    } else {
      ASSERT_EQ(q.size(), ref.size());
      const Event expected = ref.top();
      ref.pop();
      const Event got = q.top();
      ASSERT_EQ(q.pop().seq, got.seq);  // top() agrees with pop()
      ASSERT_EQ(got.time, expected.time);
      ASSERT_EQ(got.seq, expected.seq);
      ASSERT_EQ(got.tenant, expected.tenant);
      now = got.time;
    }
  }
  while (!ref.empty()) {
    const Event expected = ref.top();
    ref.pop();
    const Event got = q.pop();
    ASSERT_EQ(got.time, expected.time);
    ASSERT_EQ(got.seq, expected.seq);
    ASSERT_EQ(got.tenant, expected.tenant);
  }
  EXPECT_TRUE(q.empty());
}

}  // namespace
