// Tests for the fleet scenario engine: event ordering, scenario policies,
// contention and density behavior, and the byte-identical-report guarantee.
#include <gtest/gtest.h>

#include <set>

#include "core/host_system.h"
#include "fleet/engine.h"
#include "fleet/event_queue.h"
#include "fleet/report.h"
#include "fleet/scenario.h"

namespace {

using fleet::ArrivalPattern;
using fleet::EventKind;
using fleet::EventQueue;
using fleet::FleetEngine;
using fleet::FleetReport;
using fleet::Scenario;

FleetReport run_fresh(const Scenario& s) {
  core::HostSystem host;
  FleetEngine engine(host);
  return engine.run(s);
}

// --- Event queue ----------------------------------------------------------

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  q.push(sim::millis(30), 1, EventKind::kBootDone);
  q.push(sim::millis(10), 2, EventKind::kArrival);
  q.push(sim::millis(20), 3, EventKind::kPhaseDone);
  EXPECT_EQ(q.pop().tenant, 2u);
  EXPECT_EQ(q.pop().tenant, 3u);
  EXPECT_EQ(q.pop().tenant, 1u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, TiesBreakInPushOrder) {
  EventQueue q;
  for (std::uint64_t t = 0; t < 16; ++t) {
    q.push(sim::millis(5), t, EventKind::kArrival);
  }
  for (std::uint64_t t = 0; t < 16; ++t) {
    const auto e = q.pop();
    EXPECT_EQ(e.tenant, t);
    EXPECT_EQ(e.time, sim::millis(5));
  }
}

// --- Scenario policies ----------------------------------------------------

TEST(ScenarioTest, BuiltinsAreWellFormed) {
  for (const auto& s :
       {Scenario::coldstart_storm(), Scenario::density_sweep(),
        Scenario::steady_state_mix()}) {
    EXPECT_FALSE(s.platform_mix.empty()) << s.name;
    EXPECT_FALSE(s.workload_mix.empty()) << s.name;
    EXPECT_GT(s.tenant_count, 0) << s.name;
    EXPECT_GT(s.phases_per_tenant, 0) << s.name;
  }
}

TEST(ScenarioTest, StormUsesAtLeastThreePlatformTypes) {
  const auto s = Scenario::coldstart_storm(64);
  EXPECT_GE(s.platform_mix.size(), 3u);
  EXPECT_GE(s.tenant_count, 64);
}

TEST(ScenarioTest, EmptyMixIsRejected) {
  Scenario s;
  s.platform_mix.clear();
  core::HostSystem host;
  FleetEngine engine(host);
  EXPECT_THROW(engine.run(s), std::invalid_argument);
}

// --- Engine lifecycle -----------------------------------------------------

TEST(FleetEngineTest, StormRunsEveryTenantToCompletion) {
  const auto s = Scenario::coldstart_storm(64);
  const auto report = run_fresh(s);
  EXPECT_EQ(report.admitted, 64);
  EXPECT_EQ(report.rejected, 0);
  EXPECT_EQ(report.completed, 64);
  EXPECT_EQ(report.tenants.size(), 64u);
  int boot_samples = 0;
  std::set<std::string> platforms_used;
  for (const auto& [name, stats] : report.by_platform) {
    boot_samples += static_cast<int>(stats.boot_ms.size());
    platforms_used.insert(name);
  }
  EXPECT_EQ(boot_samples, 64);
  EXPECT_GE(platforms_used.size(), 3u);
  for (const auto& t : report.tenants) {
    EXPECT_TRUE(t.completed);
    EXPECT_EQ(t.phases_run, s.phases_per_tenant);
    EXPECT_GT(t.boot_latency, 0);
    EXPECT_GE(t.completion, t.arrival + t.boot_latency);
  }
  EXPECT_GT(report.makespan, 0);
  EXPECT_EQ(report.peak_active, 64);  // storm: everyone in flight at once
}

TEST(FleetEngineTest, FleetHapRollupCoversTheRun) {
  const auto report = run_fresh(Scenario::coldstart_storm(16));
  EXPECT_GT(report.hap.distinct_functions, 0u);
  EXPECT_GT(report.hap.total_invocations, 0u);
  EXPECT_GT(report.hap.extended_hap, 0.0);
  EXPECT_LE(report.hap.extended_hap,
            static_cast<double>(report.hap.distinct_functions));
}

TEST(FleetEngineTest, WarmImageCacheSpeedsLaterBoots) {
  // The first boot per platform image pulls it from NVMe through the host
  // page cache; the storm's later tenants must see hits, not misses.
  const auto report = run_fresh(Scenario::coldstart_storm(64));
  EXPECT_GT(report.page_cache_hits, report.page_cache_misses);
  EXPECT_GT(report.nvme_bytes_read, 0u);
}

TEST(FleetEngineTest, ContentionStretchesTheStorm) {
  // Same tenants arriving in a tight storm vs spread over 10 s: the storm's
  // peak CPU demand is higher and its boots slower or equal.
  auto storm = Scenario::coldstart_storm(64);
  auto spread = storm;
  spread.arrival = ArrivalPattern::kRamp;
  spread.arrival_window = sim::seconds(10);
  const auto storm_report = run_fresh(storm);
  const auto spread_report = run_fresh(spread);
  EXPECT_GT(storm_report.peak_cpu_demand, spread_report.peak_cpu_demand);
  EXPECT_GT(storm_report.peak_active, spread_report.peak_active);
}

// --- Density / KSM --------------------------------------------------------

TEST(FleetEngineTest, DensitySweepFindsTheRamWall) {
  auto sweep = Scenario::density_sweep(256);
  // Shrink the host so the wall is hit quickly in both configurations.
  sweep.host_ram_override_bytes = 32ull << 30;
  sweep.arrival_window = sim::millis(200);  // arrivals beat teardowns
  const auto with_ksm = run_fresh(sweep);
  auto no_ksm = sweep;
  no_ksm.enable_ksm = false;
  const auto without_ksm = run_fresh(no_ksm);

  EXPECT_GE(with_ksm.first_oom_tenant, 0);
  EXPECT_GE(without_ksm.first_oom_tenant, 0);
  // KSM stretches density: strictly more tenants fit before the wall.
  EXPECT_GT(with_ksm.admitted, without_ksm.admitted);
  EXPECT_GT(with_ksm.ksm.density_gain, 1.0);
  EXPECT_GT(with_ksm.ksm.shared_fraction, 0.0);
  EXPECT_GT(with_ksm.rejected, 0);
}

TEST(FleetEngineTest, PeakResidentStaysUnderTheCap) {
  auto sweep = Scenario::density_sweep(128);
  sweep.host_ram_override_bytes = 24ull << 30;
  sweep.arrival_window = sim::millis(100);
  const auto report = run_fresh(sweep);
  EXPECT_LE(report.peak_resident_bytes, 24ull << 30);
  EXPECT_GT(report.peak_resident_bytes, 0u);
}

TEST(FleetEngineTest, MixedFleetRespectsTheCapToo) {
  // Regression: namespace-backed admissions must count the KSM backing
  // pages hypervisor tenants already put on the host, not just the
  // non-KSM resident set.
  auto mix = Scenario::steady_state_mix(64);
  mix.arrival = ArrivalPattern::kStorm;  // arrivals beat teardowns
  mix.arrival_window = sim::millis(50);
  mix.host_ram_override_bytes = 8ull << 30;
  const auto report = run_fresh(mix);
  EXPECT_LE(report.peak_resident_bytes, 8ull << 30);
  EXPECT_GT(report.rejected, 0);  // the small cap must actually bind
}

TEST(FleetEngineTest, HypervisorBackedClassification) {
  using platforms::PlatformId;
  EXPECT_TRUE(fleet::is_hypervisor_backed(PlatformId::kQemuKvm));
  EXPECT_TRUE(fleet::is_hypervisor_backed(PlatformId::kFirecracker));
  EXPECT_TRUE(fleet::is_hypervisor_backed(PlatformId::kOsvFirecracker));
  EXPECT_FALSE(fleet::is_hypervisor_backed(PlatformId::kDocker));
  EXPECT_FALSE(fleet::is_hypervisor_backed(PlatformId::kGvisor));
  EXPECT_FALSE(fleet::is_hypervisor_backed(PlatformId::kNative));
}

// --- Determinism ----------------------------------------------------------

TEST(FleetDeterminismTest, SameSeedSameScenarioByteIdenticalReport) {
  for (const auto& s :
       {Scenario::coldstart_storm(32), Scenario::steady_state_mix(24)}) {
    const auto a = run_fresh(s);
    const auto b = run_fresh(s);
    EXPECT_EQ(a.to_text(), b.to_text()) << s.name;
  }
}

TEST(FleetDeterminismTest, DifferentSeedDifferentReport) {
  auto s = Scenario::coldstart_storm(32);
  const auto a = run_fresh(s);
  s.seed ^= 0xDEAD'BEEFull;
  const auto b = run_fresh(s);
  EXPECT_NE(a.to_text(), b.to_text());
}

TEST(FleetDeterminismTest, ReportExposesBootCdfs) {
  const auto report = run_fresh(Scenario::coldstart_storm(32));
  const auto cdfs = report.boot_cdfs();
  EXPECT_GE(cdfs.size(), 3u);
  for (const auto& series : cdfs) {
    EXPECT_FALSE(series.samples_ms.empty());
  }
}

// --- Density-latch arrival short-circuit ----------------------------------

/// Golden for a density sweep whose stop_at_first_oom latch trips mid-run,
/// captured from the pre-PR-5 engine (commit d1d449a), which still paid one
/// queue event per post-latch arrival. The lazily-seeded engine must
/// produce byte-identical report text (admitted/rejected counts, makespan
/// ending at the last arrival, every table row) while the bulk-rejected
/// tail no longer costs per-tenant events.
constexpr const char* kLatchedDensitySweep =
    R"GOLD(scenario: density-sweep (seed 17433000876150095873)
tenants: 197 admitted, 203 rejected, 197 completed; peak active 197
makespan: 3614.06 ms; peak CPU demand 3.08x host threads; peak resident 255.6 GiB
density wall: tenant 197 was the first to not fit in host RAM
ksm: 201728 pages advised -> 119080 backing (gain 1.69x, 41.2% cross-tenant shared)
host page cache: 6389760 hits, 65536 misses; nvme read 256.0 MiB
fleet HAP: 290 distinct host fns, 4385480 invocations, extended HAP 32.71

platform     tenants  boot p50 (ms)  boot p90 (ms)  boot p99 (ms)  phase p50 (ms)
---------------------------------------------------------------------------------
firecracker  89       544.54         970.40         1160.96        840.38        
qemu-kvm     108      409.33         737.33         838.65         781.12        
)GOLD";

Scenario latched_density_sweep() {
  auto sweep = Scenario::density_sweep(400);
  // Arrivals must outpace teardowns or the density wall is never reached.
  sweep.arrival_window = sim::millis(250);
  return sweep;
}

TEST(FleetLatchTest, LatchedSweepReportMatchesEagerEngine) {
  const auto report = run_fresh(latched_density_sweep());
  EXPECT_EQ(report.to_text(), kLatchedDensitySweep);
}

TEST(FleetLatchTest, PostLatchArrivalsStopPayingEventCost) {
  const auto report = run_fresh(latched_density_sweep());
  EXPECT_EQ(report.admitted, 197);
  EXPECT_EQ(report.rejected, 203);
  // The eager engine processed 1188 events here (one per post-latch
  // arrival); the bulk-rejected tail must not scale events with the
  // tenant count. 197 admitted * 5 lifecycle events + the walk-rejected
  // arrivals before the latch tripped.
  EXPECT_EQ(report.events_processed, 986u);
  // Scaling the tenant count only grows the bulk-rejected tail: admitted
  // and events stay flat while rejected absorbs the growth.
  auto bigger = latched_density_sweep();
  bigger.tenant_count = 800;
  const auto big = run_fresh(bigger);
  EXPECT_EQ(big.admitted, 197);
  EXPECT_EQ(big.events_processed, 986u);
  EXPECT_EQ(big.rejected, 603);
}

// --- Boot SLO verdict -----------------------------------------------------

TEST(FleetSloTest, VerdictLineGatedOnBudget) {
  const auto s = Scenario::coldstart_storm(32);
  const auto without = run_fresh(s);
  EXPECT_EQ(without.boot_slo_ms, 0);
  EXPECT_EQ(without.to_text().find("boot SLO"), std::string::npos);

  auto with_budget = s;
  with_budget.boot_slo_ms = sim::millis(400);
  const auto with = run_fresh(with_budget);
  EXPECT_NE(with.to_text().find("boot SLO"), std::string::npos);
  // The verdict line is the only difference: removing it restores the
  // budget-less rendering byte for byte.
  std::string text = with.to_text();
  const auto pos = text.find("boot SLO");
  const auto eol = text.find('\n', pos);
  text.erase(pos, eol - pos + 1);
  EXPECT_EQ(text, without.to_text());
}

TEST(FleetSloTest, FractionCountsBootsWithinBudget) {
  auto s = Scenario::coldstart_storm(32);
  s.boot_slo_ms = sim::millis(400);
  const auto report = run_fresh(s);
  const double fraction = report.boot_slo_fraction();
  EXPECT_GT(fraction, 0.0);
  EXPECT_LT(fraction, 1.0);  // firecracker's boots blow a 400 ms budget
  // Cross-check against the retained samples.
  int within = 0;
  for (const double ms : report.cluster_boot_ms.values()) {
    within += ms <= 400.0 ? 1 : 0;
  }
  EXPECT_DOUBLE_EQ(fraction, static_cast<double>(within) /
                                 static_cast<double>(
                                     report.cluster_boot_ms.size()));
  // A generous budget puts every boot inside it.
  s.boot_slo_ms = sim::seconds(3600);
  EXPECT_DOUBLE_EQ(run_fresh(s).boot_slo_fraction(), 1.0);
}

}  // namespace
