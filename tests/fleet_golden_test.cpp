// Golden-output regression test for the fleet engine.
//
// The byte-identical to_text() guarantee is the contract every perf
// optimization in the engine, KSM, and page cache must preserve. These
// goldens were captured from the pre-optimization engine (PR 1, commit
// 1055723) for the three built-in scenarios at their default sizes; any
// diff here means an optimization changed simulation *behavior*, not just
// its speed. Trailing spaces in the table rows are significant.
#include <gtest/gtest.h>

#include "core/host_system.h"
#include "fleet/engine.h"
#include "fleet/scenario.h"

namespace {

std::string run_fresh_text(const fleet::Scenario& s) {
  core::HostSystem host;
  fleet::FleetEngine engine(host);
  return engine.run(s).to_text();
}

constexpr const char* kColdstartStorm = R"GOLD(scenario: coldstart-storm (seed 17433000876150095873)
tenants: 64 admitted, 0 rejected, 64 completed; peak active 64
makespan: 516.75 ms; peak CPU demand 1.00x host threads; peak resident 6.7 GiB
ksm: 3200 pages advised -> 1408 backing (gain 2.27x, 59.4% cross-tenant shared)
host page cache: 983040 hits, 65536 misses; nvme read 256.0 MiB
fleet HAP: 301 distinct host fns, 346660 invocations, extended HAP 34.06

platform     tenants  boot p50 (ms)  boot p90 (ms)  boot p99 (ms)  phase p50 (ms)
---------------------------------------------------------------------------------
docker-oci   30       80.01          94.40          102.63         35.16         
firecracker  15       354.90         408.78         409.83         41.89         
gvisor       9        141.49         168.09         171.59         44.19         
osv-fc       10       80.24          88.23          95.39          36.54         
)GOLD";

constexpr const char* kDensitySweep = R"GOLD(scenario: density-sweep (seed 17433000876150095873)
tenants: 192 admitted, 0 rejected, 192 completed; peak active 127
makespan: 3999.56 ms; peak CPU demand 1.28x host threads; peak resident 164.7 GiB
ksm: 130048 pages advised -> 76940 backing (gain 1.69x, 41.2% cross-tenant shared)
host page cache: 6225920 hits, 65536 misses; nvme read 256.0 MiB
fleet HAP: 290 distinct host fns, 4287792 invocations, extended HAP 32.71

platform     tenants  boot p50 (ms)  boot p90 (ms)  boot p99 (ms)  phase p50 (ms)
---------------------------------------------------------------------------------
firecracker  88       388.52         457.80         513.10         510.46        
qemu-kvm     104      282.43         334.40         349.68         464.27        
)GOLD";

constexpr const char* kSteadyStateMix = R"GOLD(scenario: steady-state-mix (seed 17433000876150095873)
tenants: 48 admitted, 0 rejected, 48 completed; peak active 36
makespan: 2986.08 ms; peak CPU demand 0.49x host threads; peak resident 8.7 GiB
ksm: 4608 pages advised -> 2327 backing (gain 1.98x, 58.4% cross-tenant shared)
host page cache: 1359872 hits, 589824 misses; nvme read 2304.0 MiB
fleet HAP: 350 distinct host fns, 17507726 invocations, extended HAP 39.29

platform          tenants  boot p50 (ms)  boot p90 (ms)  boot p99 (ms)  phase p50 (ms)
--------------------------------------------------------------------------------------
cloud-hypervisor  6        141.16         156.40         166.56         215.79        
docker-oci        17       83.64          108.12         124.52         68.13         
firecracker       2        366.75         398.21         405.30         283.70        
gvisor            3        155.28         181.46         187.35         90.75         
kata-containers   3        636.29         641.06         642.13         167.97        
lxc               9        875.84         955.20         971.77         180.15        
native            1        44.30          44.30          44.30          125.42        
osv               3        185.44         210.90         216.63         169.89        
osv-fc            1        117.22         117.22         117.22         328.61        
qemu-kvm          3        282.83         311.08         317.43         108.66        
)GOLD";

TEST(FleetGoldenTest, ColdstartStormMatchesPreOptimizationEngine) {
  EXPECT_EQ(run_fresh_text(fleet::Scenario::coldstart_storm()),
            kColdstartStorm);
}

TEST(FleetGoldenTest, DensitySweepMatchesPreOptimizationEngine) {
  EXPECT_EQ(run_fresh_text(fleet::Scenario::density_sweep()), kDensitySweep);
}

TEST(FleetGoldenTest, SteadyStateMixMatchesPreOptimizationEngine) {
  EXPECT_EQ(run_fresh_text(fleet::Scenario::steady_state_mix()),
            kSteadyStateMix);
}

}  // namespace
