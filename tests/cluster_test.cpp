// Tests for fleet::Cluster: placement policies (unit + differential),
// topology construction, per-host rollups, churn loops, and the
// byte-reproducibility guarantee across hosts.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

#include "core/host_system.h"
#include "fleet/cluster.h"
#include "fleet/engine.h"
#include "fleet/placement.h"
#include "fleet/report.h"
#include "fleet/scenario.h"

namespace {

using fleet::Cluster;
using fleet::ClusterTopology;
using fleet::FleetEngine;
using fleet::FleetReport;
using fleet::HostView;
using fleet::PlacementKind;
using fleet::PlacementRequest;
using fleet::Scenario;
using fleet::make_placement;

FleetReport run_cluster(const Scenario& s) {
  Cluster cluster(s.cluster);
  return cluster.run(s);
}

std::vector<HostView> uniform_views(int hosts, std::uint64_t cap) {
  std::vector<HostView> views;
  for (int i = 0; i < hosts; ++i) {
    HostView v;
    v.index = i;
    v.ram_cap_bytes = cap;
    views.push_back(v);
  }
  return views;
}

// --- Placement policies, unit level ---------------------------------------

TEST(PlacementTest, KindNamesAndFactory) {
  for (const auto kind : fleet::all_placement_kinds()) {
    const auto policy = make_placement(kind);
    EXPECT_EQ(policy->name(), fleet::placement_kind_name(kind));
  }
  EXPECT_EQ(fleet::placement_kind_name(PlacementKind::kKsmAffinity),
            "ksm-affinity");
}

TEST(PlacementTest, RoundRobinCyclesAndResets) {
  const auto policy = make_placement(PlacementKind::kRoundRobin);
  const auto views = uniform_views(3, 1ull << 30);
  PlacementRequest req;
  policy->reset();
  EXPECT_EQ(policy->place(req, views), 0);
  EXPECT_EQ(policy->place(req, views), 1);
  EXPECT_EQ(policy->place(req, views), 2);
  EXPECT_EQ(policy->place(req, views), 0);
  policy->reset();
  EXPECT_EQ(policy->place(req, views), 0);
}

TEST(PlacementTest, LeastLoadedPicksMostFreeRamLowestIndexOnTies) {
  const auto policy = make_placement(PlacementKind::kLeastLoaded);
  auto views = uniform_views(3, 10ull << 30);
  views[0].resident_bytes = 4ull << 30;
  views[1].resident_bytes = 1ull << 30;
  views[2].resident_bytes = 6ull << 30;
  PlacementRequest req;
  EXPECT_EQ(policy->place(req, views), 1);
  views[1].resident_bytes = views[0].resident_bytes;  // tie 0 vs 1
  EXPECT_EQ(policy->place(req, views), 0);
}

TEST(PlacementTest, KsmAffinityPrefersCoTenantsThenFallsBack) {
  const auto policy = make_placement(PlacementKind::kKsmAffinity);
  auto views = uniform_views(3, 10ull << 30);
  views[2].same_platform_tenants = 4;
  views[2].resident_bytes = 8ull << 30;  // fullest, but has the co-tenants
  views[1].same_platform_tenants = 1;
  PlacementRequest req;
  EXPECT_EQ(policy->place(req, views), 2);
  // No co-tenant anywhere: degrade to least-loaded.
  for (auto& v : views) {
    v.same_platform_tenants = 0;
  }
  EXPECT_EQ(policy->place(req, views), 0);
  views[0].resident_bytes = 2ull << 30;
  EXPECT_EQ(policy->place(req, views), 1);
}

// --- Topology --------------------------------------------------------------

TEST(ClusterTest, TopologyShapesEveryHost) {
  ClusterTopology topo;
  topo.host_count = 3;
  topo.cpu_threads = 32;
  topo.ram_bytes = 64ull << 30;
  topo.nic_gbps = 10.0;
  Cluster cluster(topo);
  ASSERT_EQ(cluster.host_count(), 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cluster.host(i).spec().cpu_threads, 32);
    EXPECT_EQ(cluster.host(i).spec().ram_bytes, 64ull << 30);
    EXPECT_DOUBLE_EQ(cluster.host(i).spec().nic.line_rate_bps, 10e9);
  }
}

TEST(ClusterTest, RejectsEmptyTopology) {
  ClusterTopology topo;
  topo.host_count = 0;
  EXPECT_THROW(Cluster{topo}, std::invalid_argument);
}

TEST(ClusterTest, EngineRequiresPolicyForMultipleHosts) {
  core::HostSystem a;
  core::HostSystem b;
  FleetEngine engine({&a, &b}, nullptr);
  EXPECT_THROW(engine.run(Scenario::coldstart_storm(8)),
               std::invalid_argument);
}

// --- Single-host equivalence ----------------------------------------------

TEST(ClusterTest, OneHostClusterMatchesFleetEngineByteForByte) {
  const auto s = Scenario::coldstart_storm(32);
  core::HostSystem host;
  FleetEngine engine(host);
  const auto direct = engine.run(s);
  const auto via_cluster = run_cluster(s);  // s.cluster.host_count == 1
  EXPECT_EQ(direct.to_text(), via_cluster.to_text());
  EXPECT_EQ(via_cluster.hosts.size(), 1u);
  EXPECT_TRUE(via_cluster.placement.empty());
}

// --- Cluster behavior ------------------------------------------------------

TEST(ClusterTest, ShardingScalesAdmissionsPastOneHost) {
  auto s = Scenario::cluster_storm(512, 1);
  s.guest_ram_bytes = 2048ull << 20;
  s.cluster.ram_bytes = 48ull << 30;
  const auto one_host = run_cluster(s);
  s.cluster.host_count = 4;
  const auto four_hosts = run_cluster(s);
  EXPECT_GT(one_host.rejected, 0);
  EXPECT_GT(four_hosts.admitted, one_host.admitted);
}

TEST(ClusterTest, PerHostRollupsSumToFleetTotals) {
  auto s = Scenario::cluster_storm(256, 4, PlacementKind::kLeastLoaded);
  s.guest_ram_bytes = 2048ull << 20;
  s.cluster.ram_bytes = 32ull << 30;  // small enough that rejections occur
  const auto report = run_cluster(s);
  ASSERT_EQ(report.hosts.size(), 4u);
  int admitted = 0;
  int rejected = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t hap_fns = 0;
  for (const auto& h : report.hosts) {
    admitted += h.admitted;
    rejected += h.rejected;
    hits += h.page_cache_hits;
    misses += h.page_cache_misses;
    hap_fns += h.hap.distinct_functions;
  }
  EXPECT_EQ(admitted, report.admitted);
  EXPECT_EQ(rejected, report.rejected);
  EXPECT_GT(report.rejected, 0);
  EXPECT_EQ(hits, report.page_cache_hits);
  EXPECT_EQ(misses, report.page_cache_misses);
  EXPECT_EQ(hap_fns, report.hap.distinct_functions);
}

TEST(ClusterTest, ReportRendersPlacementAndHostTable) {
  const auto report = run_cluster(Scenario::cluster_storm(64, 4));
  EXPECT_TRUE(report.is_cluster());
  const auto text = report.to_text();
  EXPECT_NE(text.find("placement: round-robin across 4 hosts"),
            std::string::npos);
  EXPECT_NE(text.find("cluster boot CDF"), std::string::npos);
  EXPECT_NE(text.find("ksm shared pages"), std::string::npos);
  EXPECT_FALSE(report.cluster_boot_ms.empty());
  EXPECT_EQ(report.cluster_boot_cdf().samples_ms.size(),
            report.cluster_boot_ms.size());
}

// --- Differential: placement policies -------------------------------------

TEST(ClusterDifferentialTest, RoundRobinAndLeastLoadedAgreeOnUniformFleet) {
  // Uniform fleet: one platform, fixed guest RAM, no KSM, storm arrivals
  // (every arrival lands before the first teardown frees RAM). Both
  // policies then fill M identical hosts evenly, so aggregate admission
  // counts must match exactly even though per-arrival choices differ.
  auto s = Scenario::cluster_storm(256, 4);
  s.platform_mix = {{platforms::PlatformId::kFirecracker, 1.0}};
  s.enable_ksm = false;
  s.guest_ram_bytes = 2048ull << 20;
  s.cluster.ram_bytes = 16ull << 30;

  s.placement = PlacementKind::kRoundRobin;
  const auto rr = run_cluster(s);
  s.placement = PlacementKind::kLeastLoaded;
  const auto ll = run_cluster(s);

  EXPECT_GT(rr.rejected, 0);  // the cap must actually bind
  EXPECT_EQ(rr.admitted, ll.admitted);
  EXPECT_EQ(rr.rejected, ll.rejected);
  EXPECT_EQ(rr.completed, ll.completed);
}

TEST(ClusterDifferentialTest, KsmAffinitySharesStrictlyMoreThanRoundRobin) {
  // Two hypervisor platforms, two tenants per host on average: round-robin
  // strands single tenants of a platform on a host (their image pages merge
  // with nobody), ksm-affinity co-locates same-image tenants, so the
  // cluster-wide shared page count must be strictly higher and the backing
  // page count strictly lower.
  auto s = Scenario::cluster_storm(16, 8);
  s.platform_mix = {
      {platforms::PlatformId::kQemuKvm, 0.5},
      {platforms::PlatformId::kFirecracker, 0.5},
  };
  s.guest_ram_bytes = 2048ull << 20;

  s.placement = PlacementKind::kRoundRobin;
  const auto rr = run_cluster(s);
  s.placement = PlacementKind::kKsmAffinity;
  const auto affinity = run_cluster(s);

  EXPECT_EQ(rr.admitted, affinity.admitted);  // nobody near the RAM wall
  EXPECT_GT(affinity.ksm.shared_pages, rr.ksm.shared_pages);
  EXPECT_LT(affinity.ksm.backing_pages, rr.ksm.backing_pages);
  EXPECT_GT(affinity.ksm.density_gain, rr.ksm.density_gain);
}

// --- Churn -----------------------------------------------------------------

TEST(ChurnTest, TenantsReenterTheFleet) {
  auto s = Scenario::churn_mix(16, 2);
  const auto churned = run_cluster(s);
  s.churn_rounds = 0;
  const auto single_pass = run_cluster(s);

  EXPECT_EQ(churned.churn_rearrivals, 16 * 2);
  EXPECT_EQ(single_pass.churn_rearrivals, 0);
  // Every re-arrival found room (steady-state mix is far from the wall):
  // three admissions and three completions per tenant.
  EXPECT_EQ(churned.admitted, 16 * 3);
  EXPECT_EQ(churned.completed, 16 * 3);
  EXPECT_GT(churned.makespan, single_pass.makespan);
  for (const auto& t : churned.tenants) {
    EXPECT_TRUE(t.completed);
    EXPECT_EQ(t.rounds_completed, 3);
    EXPECT_EQ(t.phases_run, s.phases_per_tenant * 3);
  }
  // The per-platform table counts distinct tenants (16), while the boot
  // latency distributions collect one sample per boot (48).
  int platform_tenants = 0;
  int boot_samples = 0;
  for (const auto& [name, stats] : churned.by_platform) {
    (void)name;
    platform_tenants += stats.tenants;
    boot_samples += static_cast<int>(stats.boot_ms.size());
  }
  EXPECT_EQ(platform_tenants, 16);
  EXPECT_EQ(boot_samples, 16 * 3);
}

TEST(ChurnTest, RejectedReentryLeavesACoherentOutcome) {
  // Density-sweep semantics + churn: once the host first fills, every
  // later (re-)arrival is rejected — so tenants that completed round 0
  // get turned away on re-entry. Their outcome must then read as a clean
  // rejection (not completed, no stale boot record), with the earlier
  // rounds still visible in rounds_completed/phases_run.
  auto s = Scenario::cluster_storm(96, 1);
  s.guest_ram_bytes = 2048ull << 20;
  s.cluster.ram_bytes = 24ull << 30;
  s.stop_at_first_oom = true;
  s.churn_rounds = 2;
  s.churn_gap = sim::millis(1);
  const auto report = run_cluster(s);
  ASSERT_GT(report.rejected, 0);
  // Density-stop short-circuits are fleet-level only: hosts are charged
  // just the rejections their RAM actually refused.
  int host_rejected = 0;
  for (const auto& h : report.hosts) {
    host_rejected += h.rejected;
  }
  EXPECT_LT(host_rejected, report.rejected);
  int rejected_after_completing = 0;
  for (const auto& t : report.tenants) {
    if (!t.admitted) {
      EXPECT_FALSE(t.completed) << "tenant " << t.id;
      EXPECT_EQ(t.boot_latency, 0) << "tenant " << t.id;
      EXPECT_EQ(t.completion, 0) << "tenant " << t.id;
      if (t.rounds_completed > 0) {
        ++rejected_after_completing;
      }
    }
  }
  EXPECT_GT(rejected_after_completing, 0);
}

TEST(ChurnTest, ChurnOnClusterIsDeterministic) {
  auto s = Scenario::cluster_storm(64, 4, PlacementKind::kLeastLoaded);
  s.churn_rounds = 2;
  const auto a = run_cluster(s);
  const auto b = run_cluster(s);
  EXPECT_EQ(a.to_text(), b.to_text());
  EXPECT_EQ(a.churn_rearrivals, 128);
}

// --- Determinism across every policy ---------------------------------------

TEST(ClusterDeterminismTest, ByteIdenticalReportsForEveryPolicy) {
  for (const auto kind : fleet::all_placement_kinds()) {
    const auto s = Scenario::cluster_storm(96, 4, kind);
    const auto a = run_cluster(s);
    const auto b = run_cluster(s);
    EXPECT_EQ(a.to_text(), b.to_text()) << fleet::placement_kind_name(kind);
    EXPECT_EQ(a.events_processed, b.events_processed);
  }
}

TEST(ClusterDeterminismTest, PoliciesProduceDistinctPlacements) {
  // Sanity: the three policies are not accidentally the same function —
  // on a mixed fleet their per-host admission splits differ.
  auto per_host = [](const FleetReport& r) {
    std::vector<int> counts;
    for (const auto& h : r.hosts) {
      counts.push_back(h.admitted);
    }
    return counts;
  };
  const auto rr =
      run_cluster(Scenario::cluster_storm(128, 4, PlacementKind::kRoundRobin));
  const auto affinity = run_cluster(
      Scenario::cluster_storm(128, 4, PlacementKind::kKsmAffinity));
  EXPECT_NE(per_host(rr), per_host(affinity));
}

}  // namespace
