// Tests for the memory-hierarchy and KSM models.
#include <gtest/gtest.h>

#include <vector>

#include "mem/hierarchy.h"
#include "mem/ksm.h"
#include "sim/rng.h"
#include "stats/summary.h"

namespace {

using mem::HierarchySpec;
using mem::Ksm;
using mem::MemoryHierarchy;
using mem::MemoryProfile;

MemoryProfile native_profile() { return {}; }

MemoryProfile firecracker_profile() {
  MemoryProfile p;
  p.ept = true;
  p.backing_extra_ns = 26.0;
  p.backing_jitter = 0.45;
  p.bandwidth_factor = 0.78;
  return p;
}

double mean_latency(const MemoryHierarchy& h, std::uint64_t buffer,
                    const MemoryProfile& p, bool hugepages, int runs = 50) {
  sim::Rng rng(42);
  stats::Summary s;
  for (int i = 0; i < runs; ++i) {
    s.add(h.random_access_extra_ns(buffer, p, hugepages, rng));
  }
  return s.mean();
}

TEST(HierarchyTest, LatencyMonotonicInBufferSize) {
  MemoryHierarchy h;
  const auto p = native_profile();
  double prev = -1.0;
  for (int n = 16; n <= 26; ++n) {
    const double lat = mean_latency(h, 1ull << n, p, false);
    EXPECT_GE(lat, prev) << "buffer 2^" << n;
    prev = lat;
  }
}

// Property sweep: monotonicity holds for every platform profile.
class HierarchyMonotonicity
    : public ::testing::TestWithParam<std::tuple<bool, double, bool>> {};

TEST_P(HierarchyMonotonicity, LatencyNonDecreasing) {
  const auto [ept, backing, hugepages] = GetParam();
  MemoryProfile p;
  p.ept = ept;
  p.backing_extra_ns = backing;
  MemoryHierarchy h;
  double prev = -1.0;
  for (int n = 16; n <= 26; ++n) {
    const double lat = mean_latency(h, 1ull << n, p, hugepages);
    EXPECT_GE(lat, prev - 0.5);  // allow sub-noise wiggle
    prev = lat;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, HierarchyMonotonicity,
    ::testing::Combine(::testing::Bool(), ::testing::Values(0.0, 15.0, 30.0),
                       ::testing::Bool()));

TEST(HierarchyTest, SmallBufferIsNearZeroExtra) {
  MemoryHierarchy h;
  // 2^14 fits in L1: extra over L1 should be ~0.
  EXPECT_LT(mean_latency(h, 1 << 14, native_profile(), false), 1.0);
}

TEST(HierarchyTest, EptIncreasesLargeBufferLatency) {
  MemoryHierarchy h;
  MemoryProfile ept;
  ept.ept = true;
  const double native = mean_latency(h, 1ull << 26, native_profile(), false);
  const double virt = mean_latency(h, 1ull << 26, ept, false);
  EXPECT_GT(virt, native * 1.05);
}

TEST(HierarchyTest, FirecrackerWorstLatencyAndVariance) {
  MemoryHierarchy h;
  sim::Rng rng(7);
  stats::Summary fc, native;
  for (int i = 0; i < 200; ++i) {
    fc.add(h.random_access_extra_ns(1ull << 26, firecracker_profile(), false, rng));
    native.add(h.random_access_extra_ns(1ull << 26, native_profile(), false, rng));
  }
  EXPECT_GT(fc.mean(), native.mean() * 1.2);
  EXPECT_GT(fc.stddev(), native.stddev() * 1.5);
}

TEST(HierarchyTest, HugePagesRelieveLargeBuffers) {
  MemoryHierarchy h;
  const auto p = native_profile();
  const double regular = mean_latency(h, 1ull << 26, p, false);
  const double huge = mean_latency(h, 1ull << 26, p, true);
  // Paper: ~30% lower access latency in the larger buffers.
  EXPECT_LT(huge, regular * 0.85);
}

TEST(HierarchyTest, HugePageUnsupportedPlatformSeesNoRelief) {
  MemoryHierarchy h;
  MemoryProfile kata_no_huge;           // Kata does not support HugePages
  kata_no_huge.hugepage_support = false;
  const double regular = mean_latency(h, 1ull << 26, kata_no_huge, false);
  const double requested_huge = mean_latency(h, 1ull << 26, kata_no_huge, true);
  EXPECT_NEAR(requested_huge / regular, 1.0, 0.05);
}

TEST(HierarchyTest, TlbMissFractionBounds) {
  MemoryHierarchy h;
  EXPECT_DOUBLE_EQ(h.tlb_miss_fraction(0, false), 0.0);
  EXPECT_DOUBLE_EQ(h.tlb_miss_fraction(1 << 16, false), 0.0);  // covered
  EXPECT_GT(h.tlb_miss_fraction(1ull << 26, false), 0.85);
  EXPECT_DOUBLE_EQ(h.tlb_miss_fraction(1ull << 26, true), 0.0);  // 2M pages
}

TEST(HierarchyTest, DramFractionBounds) {
  MemoryHierarchy h;
  EXPECT_DOUBLE_EQ(h.dram_fraction(1 << 16), 0.0);
  EXPECT_GT(h.dram_fraction(1ull << 30), 0.97);
  EXPECT_LE(h.dram_fraction(1ull << 30), 1.0);
}

TEST(HierarchyTest, BandwidthFactorScalesThroughput) {
  MemoryHierarchy h;
  sim::Rng rng(11);
  stats::Summary native_bw, fc_bw;
  for (int i = 0; i < 100; ++i) {
    native_bw.add(h.copy_bandwidth(MemoryHierarchy::CopyKind::kRegular,
                                   native_profile(), rng));
    fc_bw.add(h.copy_bandwidth(MemoryHierarchy::CopyKind::kRegular,
                               firecracker_profile(), rng));
  }
  EXPECT_NEAR(fc_bw.mean() / native_bw.mean(), 0.78, 0.03);
}

TEST(HierarchyTest, Sse2FasterThanRegularCopy) {
  MemoryHierarchy h;
  sim::Rng rng(13);
  const auto p = native_profile();
  stats::Summary reg, sse;
  for (int i = 0; i < 100; ++i) {
    reg.add(h.copy_bandwidth(MemoryHierarchy::CopyKind::kRegular, p, rng));
    sse.add(h.copy_bandwidth(MemoryHierarchy::CopyKind::kSse2, p, rng));
  }
  EXPECT_GT(sse.mean(), reg.mean());
}

TEST(KsmTest, NoSharingWithoutScan) {
  Ksm ksm;
  ksm.advise(1, {1, 2, 3});
  EXPECT_EQ(ksm.backing_pages(), 3u);
  EXPECT_DOUBLE_EQ(ksm.density_gain(), 1.0);
}

TEST(KsmTest, IdenticalVmsMergeFully) {
  Ksm ksm;
  ksm.advise(1, {10, 20, 30});
  ksm.advise(2, {10, 20, 30});
  const auto merged = ksm.scan();
  EXPECT_EQ(merged, 3u);
  EXPECT_EQ(ksm.advised_pages(), 6u);
  EXPECT_EQ(ksm.backing_pages(), 3u);
  EXPECT_DOUBLE_EQ(ksm.density_gain(), 2.0);
  EXPECT_DOUBLE_EQ(ksm.shared_fraction(), 1.0);
}

TEST(KsmTest, DisjointVmsShareNothing) {
  Ksm ksm;
  ksm.advise(1, {1, 2});
  ksm.advise(2, {3, 4});
  ksm.scan();
  EXPECT_EQ(ksm.backing_pages(), 4u);
  EXPECT_DOUBLE_EQ(ksm.shared_fraction(), 0.0);
}

TEST(KsmTest, RemoveVmRestoresIsolation) {
  Ksm ksm;
  ksm.advise(1, {10, 20});
  ksm.advise(2, {10, 20});
  ksm.scan();
  ksm.remove(2);
  ksm.scan();
  EXPECT_EQ(ksm.advised_pages(), 2u);
  EXPECT_DOUBLE_EQ(ksm.shared_fraction(), 0.0);
}

TEST(KsmTest, ReAdviseReplacesPages) {
  Ksm ksm;
  ksm.advise(1, {1, 2, 3});
  ksm.advise(1, {4});
  EXPECT_EQ(ksm.advised_pages(), 1u);
}

TEST(KsmTest, PartialOverlap) {
  Ksm ksm;
  ksm.advise(1, {1, 2, 3, 4});
  ksm.advise(2, {3, 4, 5, 6});
  ksm.scan();
  EXPECT_EQ(ksm.backing_pages(), 6u);
  EXPECT_DOUBLE_EQ(ksm.shared_fraction(), 0.5);
}

TEST(KsmTest, RunAdviseMatchesPerPageAdvise) {
  // The run-length fast path must be observationally identical to advising
  // the same digests one page at a time.
  Ksm per_page, runs;
  per_page.advise(1, {100, 101, 102, 103, 200, 201});
  runs.advise_runs(1, {{100, 4}, {200, 2}});
  per_page.advise(2, {102, 103, 104, 200});
  runs.advise_runs(2, {{102, 3}, {200, 1}});
  EXPECT_EQ(per_page.advised_pages(), runs.advised_pages());
  EXPECT_EQ(per_page.scan(), runs.scan());
  EXPECT_EQ(per_page.backing_pages(), runs.backing_pages());
  EXPECT_DOUBLE_EQ(per_page.density_gain(), runs.density_gain());
  EXPECT_DOUBLE_EQ(per_page.shared_fraction(), runs.shared_fraction());

  per_page.remove(1);
  runs.remove(1);
  EXPECT_EQ(per_page.scan(), runs.scan());
  EXPECT_EQ(per_page.backing_pages(), runs.backing_pages());
  EXPECT_DOUBLE_EQ(per_page.shared_fraction(), runs.shared_fraction());
}

TEST(KsmTest, RunsSplitAndRejoinAcrossPartialOverlaps) {
  // Three clients whose runs slice each other's intervals: refcounts must
  // stay exact through every incremental remove, with no full rescan.
  Ksm ksm;
  ksm.advise_runs(1, {{0, 100}});
  ksm.advise_runs(2, {{50, 100}});   // overlaps [50,100)
  ksm.advise_runs(3, {{75, 50}});    // overlaps both: [75,100) x3, [100,125) x2
  ksm.scan();
  EXPECT_EQ(ksm.advised_pages(), 250u);
  EXPECT_EQ(ksm.backing_pages(), 150u);  // distinct digests 0..150
  // Digests with refs>=2 span [50,125): refs are 2,3,2 over its three
  // 25-page slices, so 175 of the 250 advised copies share backing.
  EXPECT_DOUBLE_EQ(ksm.shared_fraction(), (25 * 2 + 25 * 3 + 25 * 2) / 250.0);

  ksm.remove(2);
  ksm.scan();
  EXPECT_EQ(ksm.advised_pages(), 150u);
  EXPECT_EQ(ksm.backing_pages(), 125u);  // [0,100) + [100,125)
  EXPECT_DOUBLE_EQ(ksm.shared_fraction(), (25 * 2) / 150.0);  // [75,100)x2

  ksm.remove(1);
  ksm.remove(3);
  ksm.scan();
  EXPECT_EQ(ksm.advised_pages(), 0u);
  EXPECT_EQ(ksm.backing_pages(), 0u);
  EXPECT_DOUBLE_EQ(ksm.density_gain(), 1.0);
}

TEST(KsmTest, EmptyAndZeroLengthRunsAreIgnored) {
  Ksm ksm;
  ksm.advise_runs(1, {{10, 0}, {20, 5}, {30, 0}});
  EXPECT_EQ(ksm.advised_pages(), 5u);
  ksm.scan();
  EXPECT_EQ(ksm.backing_pages(), 5u);
  ksm.remove(1);
  EXPECT_EQ(ksm.advised_pages(), 0u);
}

TEST(KsmTest, ChurnWithHeterogeneousBoundariesDoesNotFragmentTheTree) {
  // A long-lived client plus short-lived clients whose run boundaries all
  // differ: every removal must coalesce the splits it leaves behind, or
  // the stable tree would grow ~2 intervals per churn cycle forever.
  Ksm ksm;
  ksm.advise_runs(1, {{0, 1000}});
  for (std::uint64_t i = 0; i < 200; ++i) {
    const mem::PageDigest lo = 100 + (i * 7) % 500;
    ksm.advise_runs(2, {{lo, 300}});
    ksm.remove(2);
  }
  ksm.scan();
  EXPECT_EQ(ksm.stable_tree_intervals(), 1u);
  EXPECT_EQ(ksm.backing_pages(), 1000u);
  EXPECT_EQ(ksm.advised_pages(), 1000u);
}

TEST(KsmTest, TopDigestIsTrackedLikeAnyOther) {
  // Digest 2^64-1 cannot live in an exclusive-end interval, and the run
  // builder coalesces {MAX, 0} into a wrapping run; both must still count.
  constexpr mem::PageDigest kMax = ~mem::PageDigest{0};
  Ksm ksm;
  ksm.advise(1, {kMax, 0});  // coalesces into {base=kMax, count=2}
  ksm.advise(2, {kMax});
  EXPECT_EQ(ksm.advised_pages(), 3u);
  EXPECT_EQ(ksm.scan(), 1u);  // kMax merges across the two clients
  EXPECT_EQ(ksm.backing_pages(), 2u);
  EXPECT_DOUBLE_EQ(ksm.shared_fraction(), 2.0 / 3.0);
  ksm.remove(1);
  ksm.scan();
  EXPECT_EQ(ksm.advised_pages(), 1u);
  EXPECT_EQ(ksm.backing_pages(), 1u);
  ksm.remove(2);
  ksm.scan();
  EXPECT_EQ(ksm.backing_pages(), 0u);
  EXPECT_EQ(ksm.stable_tree_intervals(), 0u);
}

// --- probe_runs: read-only admission trials -------------------------------

/// The probe contract: probe_runs(runs) predicts exactly what
/// advise_runs(new_vm, runs) + scan() changes, and removing the VM again
/// restores the pre-probe state — all observed through the public
/// counters. Requires the tree to be in its scanned state so
/// backing_pages() reads distinct pages on both sides of the comparison.
void expect_probe_matches_mutation(Ksm& ksm,
                                   const std::vector<mem::PageRun>& runs,
                                   std::uint64_t vm_id) {
  ksm.scan();
  const std::uint64_t backing_before = ksm.backing_pages();
  const std::uint64_t shared_before = ksm.shared_pages();
  const std::uint64_t advised_before = ksm.advised_pages();

  const Ksm::ProbeDelta delta = ksm.probe_runs(runs);
  // const probe: nothing observable moved.
  ASSERT_EQ(ksm.backing_pages(), backing_before);
  ASSERT_EQ(ksm.shared_pages(), shared_before);
  ASSERT_EQ(ksm.advised_pages(), advised_before);

  ksm.advise_runs(vm_id, runs);
  ksm.scan();
  ASSERT_EQ(ksm.backing_pages(), backing_before + delta.backing_delta);
  ASSERT_EQ(ksm.shared_pages(), shared_before + delta.shared_delta);

  ksm.remove(vm_id);
  ksm.scan();
  ASSERT_EQ(ksm.backing_pages(), backing_before);
  ASSERT_EQ(ksm.shared_pages(), shared_before);
  ASSERT_EQ(ksm.advised_pages(), advised_before);
}

TEST(KsmProbeTest, EmptyTreeAndEmptyRuns) {
  Ksm ksm;
  const auto none = ksm.probe_runs({});
  EXPECT_EQ(none.backing_delta, 0u);
  EXPECT_EQ(none.shared_delta, 0u);
  const auto first = ksm.probe_runs({{100, 10}});
  EXPECT_EQ(first.backing_delta, 10u);
  EXPECT_EQ(first.shared_delta, 0u);
  expect_probe_matches_mutation(ksm, {{100, 10}, {0, 0}}, 1);
}

TEST(KsmProbeTest, OverlapAndSelfOverlap) {
  Ksm ksm;
  ksm.advise_runs(1, {{0, 50}, {200, 25}});
  // Overlaps the tree, a fresh range, and itself (the duplicated {10, 20}
  // must count as a second reference, exactly like advise_runs applying
  // the runs in order).
  expect_probe_matches_mutation(
      ksm, {{10, 20}, {40, 200}, {10, 20}, {500, 5}}, 2);
}

TEST(KsmProbeTest, TopDigestDecomposition) {
  constexpr mem::PageDigest kMax = ~mem::PageDigest{0};
  Ksm ksm;
  ksm.advise_runs(1, {{kMax - 10, 11}});  // reaches digest 2^64-1
  ksm.advise_runs(2, {{0, 7}});
  // A run that hits the top digest and wraps onto [0, ...): the probe must
  // mirror apply_run's decomposition (range below max, the max digest's
  // dedicated refcount, the wrapped remainder).
  expect_probe_matches_mutation(ksm, {{kMax - 4, 12}}, 3);
  expect_probe_matches_mutation(ksm, {{kMax, 1}}, 4);
}

TEST(KsmProbeTest, RandomizedDifferentialAgainstMutateRollback) {
  sim::Rng rng(0x9D0BE5EEDull);
  for (int round = 0; round < 40; ++round) {
    Ksm ksm;
    // Seed the tree with a handful of resident VMs over a small digest
    // space so probes collide with existing intervals constantly.
    const int resident = 1 + static_cast<int>(rng.next_u64() % 4);
    for (int vm = 0; vm < resident; ++vm) {
      std::vector<mem::PageRun> runs;
      const int n = 1 + static_cast<int>(rng.next_u64() % 4);
      for (int r = 0; r < n; ++r) {
        runs.push_back({rng.next_u64() % 128, rng.next_u64() % 64});
      }
      ksm.advise_runs(static_cast<std::uint64_t>(vm), std::move(runs));
    }
    // Probe an arbitrary run set, including occasional top-digest runs.
    std::vector<mem::PageRun> probe;
    const int n = 1 + static_cast<int>(rng.next_u64() % 5);
    for (int r = 0; r < n; ++r) {
      if (rng.chance(0.2)) {
        constexpr mem::PageDigest kMax = ~mem::PageDigest{0};
        probe.push_back({kMax - (rng.next_u64() % 8),
                         1 + rng.next_u64() % 16});
      } else {
        probe.push_back({rng.next_u64() % 128, rng.next_u64() % 64});
      }
    }
    expect_probe_matches_mutation(ksm, probe, 1000);
  }
}

TEST(KsmProbeTest, ProbeLeavesTreeShapeUntouched) {
  Ksm ksm;
  ksm.advise_runs(1, {{0, 32}, {64, 32}});
  ksm.scan();
  const std::size_t intervals = ksm.stable_tree_intervals();
  (void)ksm.probe_runs({{16, 64}, {200, 10}});
  EXPECT_EQ(ksm.stable_tree_intervals(), intervals);
}

TEST(KsmTest, DuplicateRunsWithinOneClientCountTwice) {
  // A client advising the same digest range twice holds two references,
  // exactly like the per-page model advising duplicate digests.
  Ksm per_page, runs;
  per_page.advise(1, {7, 8, 7, 8});
  runs.advise_runs(1, {{7, 2}, {7, 2}});
  EXPECT_EQ(per_page.scan(), runs.scan());
  EXPECT_EQ(runs.advised_pages(), 4u);
  EXPECT_EQ(runs.backing_pages(), 2u);
  EXPECT_DOUBLE_EQ(per_page.shared_fraction(), runs.shared_fraction());
}

}  // namespace
