// Reproducibility guarantees: every figure is a pure function of its seed.
#include <gtest/gtest.h>

#include "core/figures.h"

namespace {

TEST(DeterminismTest, Figure5SameSeedSameResult) {
  const auto a = core::figure5_ffmpeg(3, 42);
  const auto b = core::figure5_ffmpeg(3, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].platform, b[i].platform);
    EXPECT_DOUBLE_EQ(a[i].mean, b[i].mean);
    EXPECT_DOUBLE_EQ(a[i].stddev, b[i].stddev);
  }
}

TEST(DeterminismTest, Figure5DifferentSeedDifferentNoise) {
  const auto a = core::figure5_ffmpeg(3, 1);
  const auto b = core::figure5_ffmpeg(3, 2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff |= a[i].mean != b[i].mean;
  }
  EXPECT_TRUE(any_diff);
}

TEST(DeterminismTest, Figure11SameSeedSameResult) {
  const auto a = core::figure11_iperf3(5, 7);
  const auto b = core::figure11_iperf3(5, 7);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].mean, b[i].mean);
  }
}

TEST(DeterminismTest, Figure13SameSeedSameCdf) {
  const auto a = core::figure13_container_boot(50, 9);
  const auto b = core::figure13_container_boot(50, 9);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].samples_ms.percentile(50),
                     b[i].samples_ms.percentile(50));
    EXPECT_DOUBLE_EQ(a[i].samples_ms.percentile(99),
                     b[i].samples_ms.percentile(99));
  }
}

TEST(DeterminismTest, Figure17SameSeedSameCurves) {
  const auto a = core::figure17_mysql_oltp(1, 5);
  const auto b = core::figure17_mysql_oltp(1, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].y.size(), b[i].y.size());
    for (std::size_t j = 0; j < a[i].y.size(); ++j) {
      EXPECT_DOUBLE_EQ(a[i].y[j], b[i].y[j]);
    }
  }
}

TEST(DeterminismTest, HapIsSeedIndependentInBreadth) {
  // Breadth (which functions are hit) is architectural, not stochastic:
  // different seeds must produce identical distinct-function counts.
  const auto a = core::figure18_hap(1);
  const auto b = core::figure18_hap(2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].distinct_functions, b[i].distinct_functions)
        << a[i].platform;
  }
}

}  // namespace
