// Heap-backed placement vs the sort-based specification.
//
// The built-in policies serve the engine's admission walk from
// incrementally maintained host orderings (indexed heaps updated by
// host_updated / platform_count_changed / host_removed deltas) instead of
// sorting a fresh snapshot per arrival. This sweep drives both faces of
// every built-in policy — the incremental walk and rank_hosts() over an
// equivalent HostView snapshot — through randomized state churn, partial
// walks, and topology changes, and requires the emitted orders to be
// identical. Any divergence means the engine's lazy walk would place
// tenants differently than the specification, breaking byte-identical
// reports.
#include <gtest/gtest.h>

#include <vector>

#include "fleet/placement.h"
#include "sim/rng.h"

namespace {

using fleet::HostState;
using fleet::HostView;
using fleet::PlacementKind;
using fleet::PlacementRequest;
using platforms::PlatformId;

constexpr PlatformId kPlatforms[] = {PlatformId::kDocker,
                                     PlatformId::kFirecracker,
                                     PlatformId::kQemuKvm};

/// Reference model of the fleet the engine would publish: per-host load
/// plus per-platform tenant counts, with add/remove churn.
struct FleetModel {
  struct Host {
    bool live = false;
    HostState state;
    int counts[3] = {0, 0, 0};
  };
  std::vector<Host> hosts;

  int live_count() const {
    int n = 0;
    for (const auto& h : hosts) {
      n += h.live ? 1 : 0;
    }
    return n;
  }

  std::vector<HostView> snapshot(PlatformId platform) const {
    std::vector<HostView> views;
    for (const auto& h : hosts) {
      if (!h.live) {
        continue;
      }
      HostView v;
      v.index = h.state.index;
      v.ram_cap_bytes = h.state.ram_cap_bytes;
      v.resident_bytes = h.state.resident_bytes;
      v.active_tenants = h.state.active_tenants;
      for (std::size_t p = 0; p < 3; ++p) {
        if (kPlatforms[p] == platform) {
          v.same_platform_tenants = h.counts[p];
        }
      }
      v.pressure = h.state.pressure;
      views.push_back(v);
    }
    return views;
  }
};

void randomize_host(FleetModel::Host& h, sim::Rng& rng) {
  h.state.ram_cap_bytes = 64ull << 30;
  // Coarse buckets on purpose: collisions in free RAM, pressure score and
  // watermark state exercise every comparator's tie-breaking.
  h.state.resident_bytes = (rng.next_u64() % 9) * (8ull << 30);
  h.state.active_tenants = static_cast<int>(rng.next_u64() % 5);
  h.state.pressure.cpu_demand = static_cast<double>(rng.next_u64() % 4) * 32.0;
  h.state.pressure.cpu_threads = 128;
  h.state.pressure.net_active = static_cast<int>(rng.next_u64() % 3);
}

void publish(fleet::PlacementPolicy& policy, const FleetModel::Host& h) {
  policy.host_updated(h.state);
  for (std::size_t p = 0; p < 3; ++p) {
    policy.platform_count_changed(h.state.index, kPlatforms[p], h.counts[p]);
  }
}

void run_equivalence_sweep(PlacementKind kind, std::uint64_t seed) {
  sim::Rng rng(seed);
  // Two faces of the same policy kind. The sorter is only ever driven
  // through rank_hosts (the specification); the walker only through the
  // incremental protocol. Separate instances keep cursor state (round
  // robin) advancing once per arrival on each side.
  const auto sorter = fleet::make_placement(kind);
  const auto walker = fleet::make_placement(kind);
  ASSERT_TRUE(walker->incremental());
  sorter->reset();
  walker->reset();

  FleetModel model;
  const int initial_hosts = 3 + static_cast<int>(rng.next_u64() % 6);
  for (int i = 0; i < initial_hosts; ++i) {
    FleetModel::Host h;
    h.live = true;
    h.state.index = i;
    randomize_host(h, rng);
    model.hosts.push_back(h);
    publish(*walker, h);
  }

  for (int arrival = 0; arrival < 300; ++arrival) {
    // Churn: load deltas, occasional drain, occasional new host.
    for (auto& h : model.hosts) {
      if (h.live && rng.chance(0.5)) {
        randomize_host(h, rng);
        const std::size_t p = rng.next_u64() % 3;
        h.counts[p] = static_cast<int>(rng.next_u64() % 4);
        publish(*walker, h);
      }
    }
    if (model.live_count() > 1 && rng.chance(0.08)) {
      for (auto& h : model.hosts) {
        if (h.live) {
          h.live = false;
          walker->host_removed(h.state.index);
          break;
        }
      }
    }
    if (rng.chance(0.10)) {
      FleetModel::Host h;
      h.live = true;
      h.state.index = static_cast<int>(model.hosts.size());
      randomize_host(h, rng);
      model.hosts.push_back(h);
      publish(*walker, h);
    }

    const PlatformId platform = kPlatforms[rng.next_u64() % 3];
    PlacementRequest req;
    req.tenant_id = static_cast<std::uint64_t>(arrival);
    req.platform_id = platform;

    std::vector<int> expected;
    sorter->rank_hosts(req, model.snapshot(platform), expected);

    walker->walk_begin(req);
    // Most walks stop early, like an admission that lands on the first or
    // second candidate; every few arrivals drain the whole ranking.
    const std::size_t want =
        rng.chance(0.3) ? expected.size()
                        : 1 + rng.next_u64() % expected.size();
    std::vector<int> actual;
    for (std::size_t i = 0; i < want; ++i) {
      const int host = walker->walk_next();
      ASSERT_GE(host, 0);
      actual.push_back(host);
    }
    if (want == expected.size()) {
      EXPECT_EQ(walker->walk_next(), -1) << "walk emitted extra hosts";
    }
    expected.resize(want);
    ASSERT_EQ(actual, expected)
        << fleet::placement_kind_name(kind) << " diverged at arrival "
        << arrival;
  }
}

class PlacementEquivalence
    : public ::testing::TestWithParam<PlacementKind> {};

TEST_P(PlacementEquivalence, HeapWalkMatchesSortedRanking) {
  run_equivalence_sweep(GetParam(), 0x91ACEull);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PlacementEquivalence,
    ::testing::ValuesIn(fleet::all_placement_kinds()),
    [](const ::testing::TestParamInfo<PlacementKind>& info) {
      std::string name = fleet::placement_kind_name(info.param);
      for (auto& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

TEST(PlacementEquivalenceSeeds, MultipleSeedsAllPolicies) {
  for (const auto kind : fleet::all_placement_kinds()) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      run_equivalence_sweep(kind, 0xB10C'0000ull + seed);
    }
  }
}

}  // namespace
