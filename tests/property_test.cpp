// Cross-cutting property tests: components are checked against simple
// reference models under randomized operation streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <map>
#include <unordered_map>
#include <vector>

#include "core/boot.h"
#include "hostk/page_cache.h"
#include "sim/rng.h"
#include "stats/sample_set.h"

namespace {

// --- PageCache vs a reference LRU model ------------------------------------

class ReferenceLru {
 public:
  explicit ReferenceLru(std::size_t capacity) : capacity_(capacity) {}

  bool access(std::uint64_t key) {
    const auto it = pos_.find(key);
    if (it == pos_.end()) {
      return false;
    }
    order_.splice(order_.begin(), order_, it->second);
    return true;
  }

  void insert(std::uint64_t key) {
    if (capacity_ == 0) {
      return;
    }
    const auto it = pos_.find(key);
    if (it != pos_.end()) {
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.push_front(key);
    pos_[key] = order_.begin();
    while (pos_.size() > capacity_) {
      pos_.erase(order_.back());
      order_.pop_back();
    }
  }

 private:
  std::size_t capacity_;
  std::list<std::uint64_t> order_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> pos_;
};

class PageCacheProperty : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(PageCacheProperty, AgreesWithReferenceLru) {
  const auto [capacity_pages, seed] = GetParam();
  hostk::PageCache cache(static_cast<std::uint64_t>(capacity_pages) *
                         hostk::PageCache::kPageSize);
  ReferenceLru reference(static_cast<std::size_t>(capacity_pages));
  sim::Rng rng(static_cast<std::uint64_t>(seed));
  for (int op = 0; op < 20'000; ++op) {
    const std::uint64_t page =
        static_cast<std::uint64_t>(rng.uniform_int(0, 3 * capacity_pages));
    const hostk::PageKey key{1, page};
    if (rng.chance(0.5)) {
      EXPECT_EQ(cache.access(key), reference.access(page)) << "op " << op;
    } else {
      cache.insert(key);
      reference.insert(page);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CapacitiesAndSeeds, PageCacheProperty,
                         ::testing::Combine(::testing::Values(4, 64, 512),
                                            ::testing::Values(1, 2)));

// --- SampleSet percentile vs sorted reference -------------------------------

class PercentileProperty : public ::testing::TestWithParam<int> {};

TEST_P(PercentileProperty, BoundedByMinMaxAndMonotonic) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()));
  stats::SampleSet samples;
  for (int i = 0; i < 2'000; ++i) {
    samples.add(rng.lognormal(2.0, 1.0));
  }
  std::vector<double> sorted = samples.values();
  std::sort(sorted.begin(), sorted.end());
  double prev = -1.0;
  for (double p = 0; p <= 100; p += 2.5) {
    const double v = samples.percentile(p);
    EXPECT_GE(v, sorted.front());
    EXPECT_LE(v, sorted.back());
    EXPECT_GE(v, prev);
    prev = v;
  }
  // Exact agreement at the extremes and the median rank.
  EXPECT_DOUBLE_EQ(samples.percentile(0), sorted.front());
  EXPECT_DOUBLE_EQ(samples.percentile(100), sorted.back());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileProperty, ::testing::Values(1, 2, 3));

// --- Boot timeline composition laws ------------------------------------------

TEST(BootCompositionProperty, AppendPreservesMeanAdditivity) {
  sim::Rng rng(5);
  core::BootTimeline a, b;
  for (int i = 0; i < 6; ++i) {
    a.stage("a" + std::to_string(i),
            sim::DurationDist::lognormal(sim::millis(1 + i), 0.1));
    b.stage("b" + std::to_string(i),
            sim::DurationDist::lognormal(sim::millis(2 + i), 0.1));
  }
  const sim::Nanos mean_a = a.mean_total();
  const sim::Nanos mean_b = b.mean_total();
  core::BootTimeline combined = a;
  combined.append(b);
  EXPECT_EQ(combined.mean_total(), mean_a + mean_b);
  // A sampled run's total equals the sum of its stage samples.
  const auto result = combined.run(rng);
  sim::Nanos sum = 0;
  for (const auto& s : result.stages) {
    sum += s.duration;
  }
  EXPECT_EQ(sum, result.total);
  EXPECT_EQ(result.stages.size(), 12u);
}

TEST(BootCompositionProperty, SampledMeanConvergesToAnalyticMean) {
  sim::Rng rng(6);
  core::BootTimeline t;
  t.stage("x", sim::DurationDist::lognormal(sim::millis(40), 0.2));
  t.stage("y", sim::DurationDist::normal(sim::millis(10), sim::millis(1)));
  double sum = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(t.run(rng).total);
  }
  EXPECT_NEAR(sum / n / static_cast<double>(t.mean_total()), 1.0, 0.02);
}

// --- Summary/SampleSet agreement ---------------------------------------------

TEST(StatsAgreementProperty, SummaryMatchesSampleSet) {
  sim::Rng rng(7);
  stats::SampleSet samples;
  stats::Summary summary;
  for (int i = 0; i < 5'000; ++i) {
    const double v = rng.normal(100.0, 15.0);
    samples.add(v);
    summary.add(v);
  }
  const auto from_samples = samples.summary();
  EXPECT_NEAR(from_samples.mean(), summary.mean(), 1e-9);
  EXPECT_NEAR(from_samples.stddev(), summary.stddev(), 1e-9);
  EXPECT_DOUBLE_EQ(from_samples.min(), summary.min());
  EXPECT_DOUBLE_EQ(from_samples.max(), summary.max());
}

// --- Zipfian distribution law -------------------------------------------------

TEST(ZipfianProperty, FrequencyFollowsPowerLaw) {
  sim::Rng rng(8);
  sim::ZipfianGenerator zipf(1'000, 0.99);
  std::map<std::uint64_t, int> counts;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    ++counts[zipf.next(rng)];
  }
  // Rank-frequency: item 0 much hotter than item 9, which is much hotter
  // than item 99 (roughly 1/rank^theta).
  EXPECT_GT(counts[0], counts[9] * 4);
  EXPECT_GT(counts[9], counts[99] * 4);
  // All mass within the domain.
  int total = 0;
  for (const auto& [k, c] : counts) {
    EXPECT_LT(k, 1'000u);
    total += c;
  }
  EXPECT_EQ(total, n);
}

}  // namespace
