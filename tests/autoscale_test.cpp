// Tests for adaptive placement: the retry-on-reject candidate walk and its
// spill accounting, the stop_at_first_oom latch semantics under retry, the
// pressure-aware policies' density/spread trade-offs, and mid-run cluster
// autoscaling (watermark-driven and explicit HostEvent hooks), including
// the byte-reproducibility guarantee for drains mid-storm.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/host_system.h"
#include "fleet/cluster.h"
#include "fleet/engine.h"
#include "fleet/placement.h"
#include "fleet/report.h"
#include "fleet/scenario.h"

namespace {

using fleet::Cluster;
using fleet::FleetEngine;
using fleet::FleetReport;
using fleet::HostEvent;
using fleet::HostView;
using fleet::PlacementKind;
using fleet::PlacementPolicy;
using fleet::PlacementRequest;
using fleet::Scenario;
using fleet::make_placement;

FleetReport run_cluster(const Scenario& s) {
  Cluster cluster(s.cluster);
  return cluster.run(s);
}

/// A RAM-tight storm whose total demand exceeds `hosts` hosts' capacity:
/// hypervisor-heavy mix, 2 GiB guests, small per-host RAM.
Scenario pressure_storm(int tenants, int hosts, PlacementKind placement) {
  auto s = Scenario::cluster_storm(tenants, hosts, placement);
  s.guest_ram_bytes = 2048ull << 20;
  s.cluster.ram_bytes = 24ull << 30;
  return s;
}

int sum_spill_in(const FleetReport& r) {
  int total = 0;
  for (const auto& h : r.hosts) {
    total += h.spill_in;
  }
  return total;
}

int sum_spill_out(const FleetReport& r) {
  int total = 0;
  for (const auto& h : r.hosts) {
    total += h.spill_out;
  }
  return total;
}


// --- New policies, unit level ----------------------------------------------

std::vector<HostView> uniform_views(int hosts, std::uint64_t cap) {
  std::vector<HostView> views;
  for (int i = 0; i < hosts; ++i) {
    HostView v;
    v.index = i;
    v.ram_cap_bytes = cap;
    v.pressure.cpu_threads = 16;
    views.push_back(v);
  }
  return views;
}

TEST(PlacementRankTest, RoundRobinRanksTheFullCycle) {
  const auto policy = make_placement(PlacementKind::kRoundRobin);
  const auto views = uniform_views(3, 1ull << 30);
  PlacementRequest req;
  std::vector<int> ranked;
  policy->reset();
  policy->rank_hosts(req, views, ranked);
  EXPECT_EQ(ranked, (std::vector<int>{0, 1, 2}));
  ranked.clear();
  policy->rank_hosts(req, views, ranked);
  EXPECT_EQ(ranked, (std::vector<int>{1, 2, 0}));
}

TEST(PlacementRankTest, LeastLoadedRanksByFreeRamDescending) {
  const auto policy = make_placement(PlacementKind::kLeastLoaded);
  auto views = uniform_views(3, 10ull << 30);
  views[0].resident_bytes = 4ull << 30;
  views[1].resident_bytes = 1ull << 30;
  views[2].resident_bytes = 6ull << 30;
  PlacementRequest req;
  std::vector<int> ranked;
  policy->rank_hosts(req, views, ranked);
  EXPECT_EQ(ranked, (std::vector<int>{1, 0, 2}));
}

TEST(PlacementRankTest, LeastPressureWeighsCpuAndNicNotJustRam) {
  const auto policy = make_placement(PlacementKind::kLeastPressure);
  auto views = uniform_views(2, 10ull << 30);
  // Equal RAM, but host 0 is CPU-saturated and NIC-busy: host 1 must rank
  // first even though least-loaded would tie and pick host 0.
  views[0].pressure.cpu_demand = 32.0;  // 2x its 16 threads
  views[0].pressure.net_active = 8;
  PlacementRequest req;
  EXPECT_EQ(policy->place(req, views), 1);
  // Flip it: host 1 busy, host 0 idle.
  views[0].pressure.cpu_demand = 0.0;
  views[0].pressure.net_active = 0;
  views[1].pressure.cpu_demand = 32.0;
  EXPECT_EQ(policy->place(req, views), 0);
  // RAM still dominates: a nearly-full idle host loses to a busy empty one.
  views[0].resident_bytes = (10ull << 30) - (64ull << 20);
  EXPECT_EQ(policy->place(req, views), 1);
}

TEST(PlacementRankTest, PackThenSpillFillsLowestIndexToWatermarkFirst) {
  const auto policy = make_placement(PlacementKind::kPackThenSpill);
  auto views = uniform_views(3, 10ull << 30);
  PlacementRequest req;
  std::vector<int> ranked;
  // All empty: pure index order — everything piles on host 0.
  policy->rank_hosts(req, views, ranked);
  EXPECT_EQ(ranked, (std::vector<int>{0, 1, 2}));
  // Host 0 above the 90% watermark: it drops to the back of the walk.
  views[0].resident_bytes = static_cast<std::uint64_t>(9.5 * (1ull << 30));
  ranked.clear();
  policy->rank_hosts(req, views, ranked);
  EXPECT_EQ(ranked, (std::vector<int>{1, 2, 0}));
}

// --- Retry-on-reject / spill chains ----------------------------------------

TEST(SpillChainTest, TwoHostForcedSpillAdmitsWhatOneHostRejects) {
  // pack-then-spill deliberately overfills host 0; the retry walk turns
  // each refusal into an admission on host 1 instead of an OOM.
  auto one = pressure_storm(64, 1, PlacementKind::kPackThenSpill);
  const auto one_host = run_cluster(one);
  auto two = pressure_storm(64, 2, PlacementKind::kPackThenSpill);
  const auto two_hosts = run_cluster(two);

  EXPECT_GT(one_host.rejected, 0);  // the single host really is too small
  EXPECT_GT(two_hosts.admitted, one_host.admitted);
  EXPECT_GT(two_hosts.spills, 0);  // admissions that survived via the walk
  EXPECT_EQ(two_hosts.hosts[1].spill_in, two_hosts.spills);
  EXPECT_EQ(two_hosts.hosts[0].spill_out, two_hosts.spills);
}

TEST(SpillChainTest, SpillOutSumsEqualSpillInSums) {
  for (const auto kind : fleet::all_placement_kinds()) {
    const auto report = run_cluster(pressure_storm(192, 4, kind));
    EXPECT_EQ(sum_spill_in(report), sum_spill_out(report))
        << fleet::placement_kind_name(kind);
    EXPECT_EQ(sum_spill_in(report), report.spills)
        << fleet::placement_kind_name(kind);
  }
}

TEST(SpillChainTest, SpillsRenderInClusterReport) {
  const auto report = run_cluster(pressure_storm(64, 2, PlacementKind::kPackThenSpill));
  ASSERT_GT(report.spills, 0);
  const auto text = report.to_text();
  EXPECT_NE(text.find("spills: "), std::string::npos);
  EXPECT_NE(text.find("spill in"), std::string::npos);
  EXPECT_NE(text.find("spill out"), std::string::npos);
}

TEST(SpillChainTest, RetryAdmitsStrictlyMoreThanSingleShotPlacement) {
  // Two platforms on four hosts: ksm-affinity piles each platform onto one
  // host and, single-shot, keeps choosing the full pile host forever — the
  // other two hosts stay empty while arrivals are rejected. The retry walk
  // spills the overflow onto them instead.
  auto s = pressure_storm(192, 4, PlacementKind::kKsmAffinity);
  s.platform_mix = {
      {platforms::PlatformId::kFirecracker, 0.5},
      {platforms::PlatformId::kQemuKvm, 0.5},
  };

  const auto with_retry = run_cluster(s);

  Cluster cluster(s.cluster);
  std::vector<core::HostSystem*> hosts;
  for (int i = 0; i < cluster.host_count(); ++i) {
    hosts.push_back(&cluster.host(i));
  }
  fleet::SingleShotPolicy single_shot(
      make_placement(PlacementKind::kKsmAffinity));
  FleetEngine engine(hosts, &single_shot);
  const auto without_retry = engine.run(s);

  EXPECT_GT(without_retry.rejected, with_retry.rejected);
  EXPECT_GT(with_retry.admitted, without_retry.admitted);
  EXPECT_GT(with_retry.spills, 0);
  EXPECT_EQ(without_retry.spills, 0);
}

// --- stop_at_first_oom under retry -----------------------------------------

/// Ranks hosts in fixed index order 0..M-1, so "the last host tried" in a
/// full walk is always the highest index.
class IndexOrderPolicy final : public PlacementPolicy {
 public:
  std::string name() const override { return "index-order"; }
  void rank_hosts(const PlacementRequest&, const std::vector<HostView>& hosts,
                  std::vector<int>& ranked) override {
    for (const HostView& h : hosts) {
      ranked.push_back(h.index);
    }
  }
};

TEST(StopAtFirstOomTest, LatchTripsOnlyAfterFullWalkFails) {
  // Host 0 fills long before host 1. Under single-shot semantics the first
  // host-0 refusal would have tripped the latch; under retry those tenants
  // spill to host 1 and the latch must stay open until both hosts refuse.
  auto s = pressure_storm(64, 2, PlacementKind::kPackThenSpill);
  s.stop_at_first_oom = true;
  const auto report = run_cluster(s);

  ASSERT_GE(report.first_oom_tenant, 0);
  EXPECT_GT(report.spills, 0);  // spills happened before the latch tripped
  // The tenant that tripped the latch was refused by every live host; its
  // rejection is attributed to the last host tried — exactly one host-level
  // rejection in the whole run (later arrivals short-circuit fleet-level).
  EXPECT_EQ(report.hosts[0].rejected + report.hosts[1].rejected, 1);
  // Every spilled admission must have happened before the wall: the
  // latch-tripping tenant arrived after all admitted ones.
  for (const auto& t : report.tenants) {
    if (t.id == static_cast<std::uint64_t>(report.first_oom_tenant)) {
      EXPECT_FALSE(t.admitted);
    }
  }
}

TEST(StopAtFirstOomTest, TrippingRejectionAttributedToLastHostTried) {
  auto s = pressure_storm(160, 3, PlacementKind::kRoundRobin);
  s.stop_at_first_oom = true;

  Cluster cluster(s.cluster);
  std::vector<core::HostSystem*> hosts;
  for (int i = 0; i < cluster.host_count(); ++i) {
    hosts.push_back(&cluster.host(i));
  }
  IndexOrderPolicy policy;
  FleetEngine engine(hosts, &policy);
  const auto report = engine.run(s);

  ASSERT_GE(report.first_oom_tenant, 0);
  // The walk always runs 0 -> 1 -> 2, so the full-walk failure lands on
  // host 2 and nowhere else.
  EXPECT_EQ(report.hosts[0].rejected, 0);
  EXPECT_EQ(report.hosts[1].rejected, 0);
  EXPECT_EQ(report.hosts[2].rejected, 1);
}

// --- pack-then-spill density ------------------------------------------------

TEST(PackThenSpillTest, StrictlyMoreSharedPagesThanRoundRobinOnSameImageFleet) {
  // One hypervisor platform, room to spare, fewer than two tenants per
  // host: round-robin strands singletons whose image and zero runs merge
  // with nobody (sharing happens only within a host's stable tree), while
  // pack-then-spill piles everyone onto host 0's tree.
  auto s = Scenario::cluster_storm(6, 4);
  s.platform_mix = {{platforms::PlatformId::kFirecracker, 1.0}};
  s.guest_ram_bytes = 2048ull << 20;

  s.placement = PlacementKind::kRoundRobin;
  const auto rr = run_cluster(s);
  s.placement = PlacementKind::kPackThenSpill;
  const auto packed = run_cluster(s);

  EXPECT_EQ(rr.admitted, packed.admitted);  // nobody near the RAM wall
  EXPECT_GT(packed.ksm.shared_pages, rr.ksm.shared_pages);
  EXPECT_LT(packed.ksm.backing_pages, rr.ksm.backing_pages);
  EXPECT_GT(packed.ksm.density_gain, rr.ksm.density_gain);
}

// --- Autoscaling ------------------------------------------------------------

TEST(AutoscaleTest, ScaleOutAdmitsStrictlyMoreThanFixedTopology) {
  auto scaled = Scenario::autoscale_storm(256, 2, 6);
  scaled.guest_ram_bytes = 2048ull << 20;
  scaled.cluster.ram_bytes = 24ull << 30;
  // Growth only: scale-in after the storm subsides would legitimately
  // shrink final_host_count back down (covered by ScaleInDrains below).
  scaled.autoscale.scale_in_watermark = 0.0;
  auto fixed = scaled;
  fixed.autoscale.enabled = false;

  const auto fixed_report = run_cluster(fixed);
  const auto scaled_report = run_cluster(scaled);

  EXPECT_GT(fixed_report.rejected, 0);  // the fixed fleet really is too small
  EXPECT_GT(scaled_report.admitted, fixed_report.admitted);
  EXPECT_GT(scaled_report.tenants_admitted(), fixed_report.tenants_admitted());
  EXPECT_GT(scaled_report.final_host_count, 2);
  EXPECT_LE(scaled_report.final_host_count, 6);
  EXPECT_FALSE(scaled_report.autoscale_timeline.empty());
  EXPECT_TRUE(fixed_report.autoscale_timeline.empty());
  // Scale-outs happened and are visible in the rendered report.
  const auto text = scaled_report.to_text();
  EXPECT_NE(text.find("autoscale: "), std::string::npos);
  EXPECT_NE(text.find("scale-out"), std::string::npos);
}

TEST(AutoscaleTest, AutoscaledRunIsByteIdenticalAcrossFreshClusters) {
  auto s = Scenario::autoscale_storm(192, 2, 5);
  s.guest_ram_bytes = 2048ull << 20;
  s.cluster.ram_bytes = 24ull << 30;
  const auto a = run_cluster(s);
  const auto b = run_cluster(s);
  EXPECT_EQ(a.to_text(), b.to_text());
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_FALSE(a.autoscale_timeline.empty());
}

TEST(AutoscaleTest, ExplicitAddHostEventGrowsTheCluster) {
  auto s = Scenario::cluster_storm(64, 2, PlacementKind::kLeastLoaded);
  HostEvent add;
  add.time = sim::millis(10);
  add.kind = HostEvent::Kind::kAdd;
  s.host_events.push_back(add);
  const auto report = run_cluster(s);
  EXPECT_EQ(report.final_host_count, 3);
  EXPECT_EQ(report.hosts.size(), 3u);
  ASSERT_EQ(report.autoscale_timeline.size(), 1u);
  EXPECT_EQ(report.autoscale_timeline[0].action, "add");
  EXPECT_EQ(report.autoscale_timeline[0].host, 2);
}

TEST(AutoscaleTest, DrainMidStormMigratesTenantsAndStaysDeterministic) {
  // Drain host 0 in the middle of the boot storm: its tenants re-enter
  // placement + admission as churn-style re-arrivals on the surviving
  // hosts, and the whole run stays byte-identical across fresh clusters.
  auto s = Scenario::cluster_storm(96, 4, PlacementKind::kLeastLoaded);
  HostEvent drain;
  drain.time = sim::millis(20);  // mid-storm: arrivals span 50 ms
  drain.kind = HostEvent::Kind::kDrain;
  drain.host = 0;
  s.host_events.push_back(drain);

  const auto a = run_cluster(s);
  const auto b = run_cluster(s);
  EXPECT_EQ(a.to_text(), b.to_text());
  EXPECT_EQ(a.events_processed, b.events_processed);

  EXPECT_EQ(a.final_host_count, 3);
  EXPECT_EQ(a.hosts.size(), 4u);
  EXPECT_TRUE(a.hosts[0].drained);
  EXPECT_GT(a.drain_migrations, 0);
  ASSERT_EQ(a.autoscale_timeline.size(), 1u);
  EXPECT_EQ(a.autoscale_timeline[0].action, "drain");
  EXPECT_EQ(a.autoscale_timeline[0].host, 0);
  // Every tenant still completed: migration re-placed, never stranded.
  for (const auto& t : a.tenants) {
    EXPECT_TRUE(t.completed) << "tenant " << t.id;
  }
  const auto text = a.to_text();
  EXPECT_NE(text.find("drain"), std::string::npos);
  EXPECT_NE(text.find("(* = host was drained mid-run)"), std::string::npos);
}

TEST(AutoscaleTest, DrainNeverRemovesTheLastLiveHost) {
  auto s = Scenario::cluster_storm(16, 2, PlacementKind::kRoundRobin);
  HostEvent d0;
  d0.time = sim::millis(5);
  d0.kind = HostEvent::Kind::kDrain;
  d0.host = 0;
  HostEvent d1 = d0;
  d1.time = sim::millis(10);
  d1.host = 1;
  s.host_events = {d0, d1};
  const auto report = run_cluster(s);
  // The second drain is refused: one live host must always remain.
  EXPECT_EQ(report.final_host_count, 1);
  EXPECT_EQ(report.autoscale_timeline.size(), 1u);
  for (const auto& t : report.tenants) {
    EXPECT_TRUE(t.completed) << "tenant " << t.id;
  }
}

TEST(AutoscaleTest, ScaleInDrainsIdleHostsAfterThePressureSubsides) {
  // Ramp the fleet up under pressure, then let churn end; the trailing
  // evaluations see the resident fraction collapse and drain back down.
  auto s = Scenario::autoscale_storm(128, 2, 4);
  s.guest_ram_bytes = 2048ull << 20;
  s.cluster.ram_bytes = 24ull << 30;
  s.autoscale.scale_in_watermark = 0.30;
  const auto report = run_cluster(s);
  bool saw_scale_in = false;
  for (const auto& a : report.autoscale_timeline) {
    saw_scale_in = saw_scale_in || a.action == "scale-in";
  }
  EXPECT_TRUE(saw_scale_in);
  EXPECT_LT(report.final_host_count, 4);
}

TEST(AutoscaleTest, ClusterAddAndDrainHostApi) {
  fleet::ClusterTopology topo;
  topo.host_count = 2;
  topo.ram_bytes = 32ull << 30;
  Cluster cluster(topo);
  EXPECT_EQ(cluster.host_count(), 2);
  EXPECT_EQ(cluster.live_host_count(), 2);
  auto& added = cluster.add_host();
  EXPECT_EQ(cluster.host_count(), 3);
  EXPECT_EQ(&cluster.host(2), &added);
  EXPECT_EQ(added.spec().ram_bytes, 32ull << 30);
  // Host 2's RNG seed is derived from its index the same way construction
  // derives it: a 3-host cluster built up-front matches.
  fleet::ClusterTopology topo3 = topo;
  topo3.host_count = 3;
  Cluster upfront(topo3);
  EXPECT_EQ(added.spec().rng_seed, upfront.host(2).spec().rng_seed);
  cluster.drain_host(1);
  EXPECT_TRUE(cluster.is_retired(1));
  EXPECT_EQ(cluster.live_host_count(), 2);
  // A new run revives every host: the engine rebuilds all shard state, so
  // the cluster's accessors must agree with where it actually places.
  auto s = Scenario::coldstart_storm(8);
  s.cluster.host_count = 3;  // matches the grown cluster
  (void)cluster.run(s);
  EXPECT_FALSE(cluster.is_retired(1));
  EXPECT_EQ(cluster.live_host_count(), 3);
}

TEST(AutoscaleTest, RejectsNonPositiveEvalInterval) {
  auto s = Scenario::autoscale_storm(8, 2, 4);
  s.autoscale.eval_interval = 0;  // would re-queue at the same instant forever
  Cluster cluster(s.cluster);
  EXPECT_THROW(cluster.run(s), std::invalid_argument);
}

}  // namespace
