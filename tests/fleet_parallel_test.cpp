// Tests for the engine's parallel execution mode (Scenario::threads > 1):
// sequential-vs-parallel byte-identity differentials over storm, churn,
// autoscale and mid-run drain scenarios at several thread counts, the
// threads-is-not-a-model-parameter guarantees, and the incremental
// fleet-counter audit behind note_peaks.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/host_system.h"
#include "fleet/cluster.h"
#include "fleet/engine.h"
#include "fleet/placement.h"
#include "fleet/report.h"
#include "fleet/scenario.h"

namespace {

using fleet::Cluster;
using fleet::FleetEngine;
using fleet::FleetReport;
using fleet::HostEvent;
using fleet::PlacementKind;
using fleet::Scenario;

FleetReport run_cluster(const Scenario& s) {
  Cluster cluster(s.cluster);
  return cluster.run(s);
}

/// Field-by-field identity, tighter than to_text(): includes everything the
/// text deliberately leaves out (events_processed, per-tenant outcomes,
/// exact doubles). The parallel engine must reproduce all of it bit for
/// bit, not just the rendered surface.
void expect_identical(const FleetReport& a, const FleetReport& b,
                      const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.to_text(), b.to_text());
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.spills, b.spills);
  EXPECT_EQ(a.peak_active, b.peak_active);
  EXPECT_EQ(a.peak_cpu_demand, b.peak_cpu_demand);  // exact double
  EXPECT_EQ(a.peak_resident_bytes, b.peak_resident_bytes);
  EXPECT_EQ(a.first_oom_tenant, b.first_oom_tenant);
  EXPECT_EQ(a.churn_rearrivals, b.churn_rearrivals);
  EXPECT_EQ(a.drain_migrations, b.drain_migrations);
  EXPECT_EQ(a.final_host_count, b.final_host_count);
  EXPECT_EQ(a.page_cache_hits, b.page_cache_hits);
  EXPECT_EQ(a.page_cache_misses, b.page_cache_misses);
  EXPECT_EQ(a.nvme_bytes_read, b.nvme_bytes_read);
  EXPECT_EQ(a.ksm.advised_pages, b.ksm.advised_pages);
  EXPECT_EQ(a.ksm.backing_pages, b.ksm.backing_pages);
  EXPECT_EQ(a.ksm.shared_pages, b.ksm.shared_pages);
  EXPECT_EQ(a.ksm.density_gain, b.ksm.density_gain);
  EXPECT_EQ(a.hap.distinct_functions, b.hap.distinct_functions);
  EXPECT_EQ(a.hap.total_invocations, b.hap.total_invocations);
  EXPECT_EQ(a.hap.extended_hap, b.hap.extended_hap);
  EXPECT_EQ(a.crash_victims, b.crash_victims);
  EXPECT_EQ(a.crash_readmitted, b.crash_readmitted);
  EXPECT_EQ(a.crash_lost, b.crash_lost);
  EXPECT_EQ(a.nic_stalls, b.nic_stalls);
  ASSERT_EQ(a.replace_ms.size(), b.replace_ms.size());
  if (!a.replace_ms.empty()) {
    EXPECT_EQ(a.replace_ms.percentile(50), b.replace_ms.percentile(50));
    EXPECT_EQ(a.replace_ms.percentile(99), b.replace_ms.percentile(99));
  }

  ASSERT_EQ(a.recovery.size(), b.recovery.size());
  for (std::size_t i = 0; i < a.recovery.size(); ++i) {
    const auto& ra = a.recovery[i];
    const auto& rb = b.recovery[i];
    EXPECT_EQ(ra.fault, rb.fault) << "fault " << i;
    EXPECT_EQ(ra.kind, rb.kind) << "fault " << i;
    EXPECT_EQ(ra.rack, rb.rack) << "fault " << i;
    EXPECT_EQ(ra.time, rb.time) << "fault " << i;
    EXPECT_EQ(ra.hosts, rb.hosts) << "fault " << i;
    EXPECT_EQ(ra.victims, rb.victims) << "fault " << i;
    EXPECT_EQ(ra.readmitted, rb.readmitted) << "fault " << i;
    EXPECT_EQ(ra.lost, rb.lost) << "fault " << i;
    ASSERT_EQ(ra.replace_ms.size(), rb.replace_ms.size()) << "fault " << i;
    if (!ra.replace_ms.empty()) {
      EXPECT_EQ(ra.replace_ms.percentile(99), rb.replace_ms.percentile(99))
          << "fault " << i;
    }
  }

  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (std::size_t i = 0; i < a.tenants.size(); ++i) {
    const auto& ta = a.tenants[i];
    const auto& tb = b.tenants[i];
    EXPECT_EQ(ta.id, tb.id) << "tenant " << i;
    EXPECT_EQ(ta.platform_id, tb.platform_id) << "tenant " << i;
    EXPECT_EQ(ta.arrival, tb.arrival) << "tenant " << i;
    EXPECT_EQ(ta.boot_latency, tb.boot_latency) << "tenant " << i;
    EXPECT_EQ(ta.completion, tb.completion) << "tenant " << i;
    EXPECT_EQ(ta.phases_run, tb.phases_run) << "tenant " << i;
    EXPECT_EQ(ta.rounds_completed, tb.rounds_completed) << "tenant " << i;
    EXPECT_EQ(ta.admitted, tb.admitted) << "tenant " << i;
    EXPECT_EQ(ta.completed, tb.completed) << "tenant " << i;
  }

  ASSERT_EQ(a.hosts.size(), b.hosts.size());
  for (std::size_t i = 0; i < a.hosts.size(); ++i) {
    const auto& ha = a.hosts[i];
    const auto& hb = b.hosts[i];
    EXPECT_EQ(ha.admitted, hb.admitted) << "host " << i;
    EXPECT_EQ(ha.rejected, hb.rejected) << "host " << i;
    EXPECT_EQ(ha.spill_in, hb.spill_in) << "host " << i;
    EXPECT_EQ(ha.spill_out, hb.spill_out) << "host " << i;
    EXPECT_EQ(ha.drained, hb.drained) << "host " << i;
    EXPECT_EQ(ha.crashed, hb.crashed) << "host " << i;
    EXPECT_EQ(ha.nic_stalls, hb.nic_stalls) << "host " << i;
    EXPECT_EQ(ha.peak_active, hb.peak_active) << "host " << i;
    EXPECT_EQ(ha.peak_resident_bytes, hb.peak_resident_bytes) << "host " << i;
    EXPECT_EQ(ha.ksm.backing_pages, hb.ksm.backing_pages) << "host " << i;
    EXPECT_EQ(ha.ksm.shared_pages, hb.ksm.shared_pages) << "host " << i;
    EXPECT_EQ(ha.page_cache_hits, hb.page_cache_hits) << "host " << i;
    EXPECT_EQ(ha.page_cache_misses, hb.page_cache_misses) << "host " << i;
    EXPECT_EQ(ha.nvme_bytes_read, hb.nvme_bytes_read) << "host " << i;
  }

  ASSERT_EQ(a.autoscale_timeline.size(), b.autoscale_timeline.size());
  for (std::size_t i = 0; i < a.autoscale_timeline.size(); ++i) {
    EXPECT_EQ(a.autoscale_timeline[i].time, b.autoscale_timeline[i].time);
    EXPECT_EQ(a.autoscale_timeline[i].action, b.autoscale_timeline[i].action);
    EXPECT_EQ(a.autoscale_timeline[i].host, b.autoscale_timeline[i].host);
    EXPECT_EQ(a.autoscale_timeline[i].live_hosts,
              b.autoscale_timeline[i].live_hosts);
    EXPECT_EQ(a.autoscale_timeline[i].resident_fraction,
              b.autoscale_timeline[i].resident_fraction);
  }
}

/// Run `base` at threads = 1 and at each count in `threads`, expecting the
/// parallel reports to match the sequential one exactly.
void expect_parallel_identical(Scenario base, const std::string& label) {
  base.threads = 1;
  const FleetReport sequential = run_cluster(base);
  for (const int threads : {2, 3, 8}) {
    Scenario s = base;
    s.threads = threads;
    const FleetReport parallel = run_cluster(s);
    expect_identical(sequential, parallel,
                     label + " @ threads=" + std::to_string(threads));
  }
}

// --- Differentials ---------------------------------------------------------

TEST(FleetParallelTest, StormMatchesSequentialAcrossPolicies) {
  for (const PlacementKind policy :
       {PlacementKind::kRoundRobin, PlacementKind::kLeastLoaded,
        PlacementKind::kKsmAffinity}) {
    Scenario s = Scenario::cluster_storm(1200, 8, policy);
    expect_parallel_identical(
        s, "storm/" + fleet::placement_kind_name(policy));
  }
}

TEST(FleetParallelTest, ChurnMixMatchesSequential) {
  Scenario s = Scenario::churn_mix(160, 3);
  s.cluster.host_count = 5;
  s.placement = PlacementKind::kLeastLoaded;
  expect_parallel_identical(s, "churn");
}

TEST(FleetParallelTest, AutoscaleStormMatchesSequential) {
  Scenario s = Scenario::autoscale_storm(900, 2, 6);
  expect_parallel_identical(s, "autoscale");
}

TEST(FleetParallelTest, DrainAndAddMidRunMatchSequential) {
  Scenario s = Scenario::cluster_storm(800, 4, PlacementKind::kLeastLoaded);
  HostEvent add;
  add.time = sim::millis(30);
  add.kind = HostEvent::Kind::kAdd;
  HostEvent drain;
  drain.time = sim::millis(60);
  drain.kind = HostEvent::Kind::kDrain;
  drain.host = 1;
  s.host_events = {add, drain};
  expect_parallel_identical(s, "host-events");
}

TEST(FleetParallelTest, RandomizedScenariosMatchSequential) {
  // Randomized-by-seed sweep across arrival patterns and mixes; every
  // thread count in 1..8 must agree with the sequential run.
  int variant = 0;
  for (const std::uint64_t seed :
       {0xA11CE5EEDull, 0xB0075EEDull, 0xC105E5EEDull}) {
    Scenario s = (variant % 2 == 0)
                     ? Scenario::cluster_storm(600, 6, PlacementKind::kKsmAffinity)
                     : Scenario::steady_state_mix(300);
    s.seed = seed;
    s.cluster.host_count = 6;
    s.placement = PlacementKind::kLeastPressure;
    if (variant == 2) {
      s.churn_rounds = 1;
      s.churn_gap = sim::millis(40);
    }
    s.threads = 1;
    const FleetReport sequential = run_cluster(s);
    for (int threads = 2; threads <= 8; ++threads) {
      Scenario p = s;
      p.threads = threads;
      expect_identical(sequential, run_cluster(p),
                       "randomized seed=" + std::to_string(seed) +
                           " threads=" + std::to_string(threads));
    }
    ++variant;
  }
}

TEST(FleetParallelTest, ChaosBuiltinsMatchSequential) {
  // Faults are coordinator events: a crash or partition boundary must land
  // at the same (time, seq) point in every worker's replayed stream, so
  // victims, re-admission timing and NIC stalls agree field-for-field.
  expect_parallel_identical(Scenario::crash_recovery(600, 4, 8),
                            "crash-recovery");
  expect_parallel_identical(Scenario::rack_outage(240, 6), "rack-outage");
  expect_parallel_identical(Scenario::partition_storm(240, 4),
                            "partition-storm");
}

TEST(FleetParallelTest, RandomFaultScheduleMatchesSequential) {
  // The random schedule is drawn from the scenario seed before the run
  // starts, so the parallel engine sees the identical fault list.
  Scenario s = Scenario::cluster_storm(400, 4, PlacementKind::kLeastPressure);
  s.arrival = fleet::ArrivalPattern::kRamp;
  s.arrival_window = sim::millis(200);
  s.phases_per_tenant = 2;
  s.mean_phase_duration = sim::millis(120);
  s.faults.random_crashes = 1;
  s.faults.random_partitions = 1;
  s.faults.random_horizon = sim::millis(150);
  expect_parallel_identical(s, "random-faults");
}

// --- The knob is an execution detail ---------------------------------------

TEST(FleetParallelTest, ThreadsOneIsTheDefaultEngine) {
  Scenario base = Scenario::cluster_storm(500, 4, PlacementKind::kRoundRobin);
  const FleetReport def = run_cluster(base);
  Scenario one = base;
  one.threads = 1;
  expect_identical(def, run_cluster(one), "threads=1 vs default");
}

TEST(FleetParallelTest, SingleHostRunsIgnoreThreads) {
  // One fixed host has nothing to fan out: threads > 1 must take the
  // sequential path and reproduce the single-host report (the same flow
  // the pinned goldens cover) exactly.
  Scenario s = Scenario::coldstart_storm(96);
  const FleetReport sequential = run_cluster(s);
  s.threads = 8;
  expect_identical(sequential, run_cluster(s), "single-host threads=8");
}

TEST(FleetParallelTest, ReportTextIsThreadCountInvariant) {
  // The knob must never leak into the rendered report: the text at any
  // thread count is the byte-identical text the sequential engine prints.
  Scenario s = Scenario::cluster_storm(300, 4, PlacementKind::kRoundRobin);
  s.threads = 1;
  const std::string sequential = run_cluster(s).to_text();
  for (const int threads : {2, 8}) {
    s.threads = threads;
    EXPECT_EQ(run_cluster(s).to_text(), sequential) << "threads=" << threads;
  }
}

// --- Incremental fleet counters (note_peaks) -------------------------------

TEST(FleetParallelTest, IncrementalFleetCountersMatchSummedForm) {
  // set_peak_audit re-derives the fleet resident/KSM sums from every shard
  // at each peak check and latches a failure on any drift from the O(1)
  // incremental counters. Exercise admissions, rejections, teardowns,
  // churn and drains.
  Scenario s = Scenario::cluster_storm(700, 4, PlacementKind::kLeastLoaded);
  s.churn_rounds = 1;
  HostEvent drain;
  drain.time = sim::millis(50);
  drain.kind = HostEvent::Kind::kDrain;
  s.host_events = {drain};
  for (const int threads : {1, 4}) {
    Scenario run = s;
    run.threads = threads;
    Cluster cluster(run.cluster);
    const auto policy = fleet::make_placement(run.placement);
    std::vector<core::HostSystem*> hosts;
    for (int i = 0; i < cluster.host_count(); ++i) {
      hosts.push_back(&cluster.host(i));
    }
    FleetEngine engine(hosts, policy.get(), &cluster);
    engine.set_peak_audit(true);
    const FleetReport r = engine.run(run);
    EXPECT_TRUE(engine.peak_audit_ok()) << "threads=" << threads;
    EXPECT_GT(r.admitted, 0);
  }
}

}  // namespace
