// Tests for syscall-program workloads (src/fleet/program.h): the builtin
// program catalog and op-class mapping, scenario validation for program
// mixes, per-op SLO verdict math, exact interpreter op accounting, the
// program-vs-statistical ftrace differential (programs light up per-syscall
// kernel functions a statistical control never touches), partition faults
// stalling in-flight program network ops, crash recovery restarting a
// victim's program from the top, and byte-identity of program runs across
// repeats and thread counts.
#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <string>

#include "core/host_system.h"
#include "fleet/chaos.h"
#include "fleet/cluster.h"
#include "fleet/engine.h"
#include "fleet/placement.h"
#include "fleet/program.h"
#include "fleet/report.h"
#include "fleet/scenario.h"
#include "hostk/host_kernel.h"

namespace {

using fleet::builtin_program;
using fleet::builtin_program_count;
using fleet::Cluster;
using fleet::Fault;
using fleet::FleetReport;
using fleet::kProgImagePull;
using fleet::kProgKvServer;
using fleet::kProgLogWriter;
using fleet::kProgMmapAnalytics;
using fleet::op_class;
using fleet::op_is_write;
using fleet::op_vcpus;
using fleet::OpClass;
using fleet::ProgramOp;
using fleet::Scenario;
using fleet::SyscallProgram;
using hostk::Syscall;

FleetReport run_cluster(const Scenario& s) {
  Cluster cluster(s.cluster);
  return cluster.run(s);
}

std::size_t cls_index(OpClass c) { return static_cast<std::size_t>(c); }

/// program_storm with the mix narrowed to exactly one builtin program.
Scenario one_program(int tenants, int hosts, int program) {
  Scenario s = Scenario::program_storm(tenants, hosts);
  s.program_mix = {{program, 1.0}};
  return s;
}

// --- Builtin catalog and op vocabulary ---------------------------------------

TEST(ProgramTest, BuiltinCatalogShipsFourPrograms) {
  ASSERT_EQ(builtin_program_count(), 4);
  for (int i = 0; i < builtin_program_count(); ++i) {
    const SyscallProgram& p = builtin_program(i);
    EXPECT_FALSE(p.name.empty());
    EXPECT_FALSE(p.ops.empty());
    EXPECT_GE(p.loops, 1);
  }
  EXPECT_EQ(builtin_program(kProgKvServer).name, "kv-server");
  EXPECT_EQ(builtin_program(kProgImagePull).name, "image-pull-serve");
  EXPECT_EQ(builtin_program(kProgLogWriter).name, "log-writer");
  EXPECT_EQ(builtin_program(kProgMmapAnalytics).name, "mmap-analytics");
  EXPECT_THROW(builtin_program(-1), std::out_of_range);
  EXPECT_THROW(builtin_program(builtin_program_count()), std::out_of_range);
}

TEST(ProgramTest, OpClassMapsSyscallsToDeviceClasses) {
  EXPECT_EQ(op_class(Syscall::kPread64), OpClass::kFile);
  EXPECT_EQ(op_class(Syscall::kOpenat), OpClass::kFile);
  EXPECT_EQ(op_class(Syscall::kMmap), OpClass::kMemory);
  EXPECT_EQ(op_class(Syscall::kSendto), OpClass::kNetwork);
  EXPECT_EQ(op_class(Syscall::kEpollWait), OpClass::kNetwork);
  EXPECT_EQ(op_class(Syscall::kFsync), OpClass::kSync);
  EXPECT_EQ(op_class(Syscall::kClockGettime), OpClass::kOther);
  EXPECT_TRUE(op_is_write(Syscall::kWrite));
  EXPECT_TRUE(op_is_write(Syscall::kPwrite64));
  EXPECT_FALSE(op_is_write(Syscall::kRead));
  // Memory ops pin a full core while faulting; device-bound classes spend
  // most of their wall time waiting.
  EXPECT_DOUBLE_EQ(op_vcpus(OpClass::kMemory), 1.0);
  EXPECT_DOUBLE_EQ(op_vcpus(OpClass::kFile), 0.5);
  EXPECT_DOUBLE_EQ(op_vcpus(OpClass::kNetwork), 0.5);
}

// --- Scenario validation -----------------------------------------------------

TEST(ProgramTest, RunRejectsNonPositivePhasesPerTenant) {
  Scenario s = Scenario::cluster_storm(4, 2, fleet::PlacementKind::kLeastLoaded);
  s.phases_per_tenant = 0;
  EXPECT_THROW(run_cluster(s), std::invalid_argument);
  s.phases_per_tenant = -3;
  EXPECT_THROW(run_cluster(s), std::invalid_argument);
}

TEST(ProgramTest, RunRejectsMalformedProgramMix) {
  Scenario s = Scenario::program_storm(4, 2);
  s.program_mix = {{builtin_program_count(), 1.0}};  // unknown program
  EXPECT_THROW(run_cluster(s), std::invalid_argument);
  s.program_mix = {{-2, 1.0}};  // below the -1 statistical sentinel
  EXPECT_THROW(run_cluster(s), std::invalid_argument);
  s.program_mix = {{kProgKvServer, 0.0}};  // weightless share
  EXPECT_THROW(run_cluster(s), std::invalid_argument);
  s.program_mix = {{-1, 1.0}};  // all-statistical sentinel mix is legal
  EXPECT_NO_THROW(run_cluster(s));
}

// --- SLO verdict math --------------------------------------------------------

TEST(ProgramTest, ProgramSloVerdictComparesPerClassP99) {
  FleetReport r;
  EXPECT_TRUE(r.program_slo_pass());  // no budget declared
  r.op_slo_ms = sim::millis(5);
  auto& p = r.by_program["x"];
  p.program = "x";
  p.by_class[cls_index(OpClass::kFile)].ops = 1;
  p.by_class[cls_index(OpClass::kFile)].op_ms.add(1.0);
  EXPECT_TRUE(r.program_slo_pass());
  // One class over budget fails the whole fleet verdict.
  p.by_class[cls_index(OpClass::kSync)].ops = 1;
  p.by_class[cls_index(OpClass::kSync)].op_ms.add(9.0);
  EXPECT_FALSE(r.program_slo_pass());
  r.op_slo_ms = 0;  // clearing the budget clears the verdict
  EXPECT_TRUE(r.program_slo_pass());
}

// --- Interpreter accounting --------------------------------------------------

TEST(ProgramTest, InterpreterOpCountsAreExact) {
  // log-writer: 32 loops of (kWrite repeat 4, kFsync repeat 1). One tenant,
  // one host: file ops 32*4, sync ops 32*1, one latency sample per event.
  const FleetReport r = run_cluster(one_program(1, 1, kProgLogWriter));
  EXPECT_EQ(r.completed, 1);
  ASSERT_EQ(r.by_program.size(), 1u);
  const auto& p = r.by_program.at("log-writer");
  EXPECT_EQ(p.tenants, 1);
  EXPECT_EQ(p.by_class[cls_index(OpClass::kFile)].ops, 128u);
  EXPECT_EQ(p.by_class[cls_index(OpClass::kSync)].ops, 32u);
  EXPECT_EQ(p.by_class[cls_index(OpClass::kFile)].op_ms.size(), 32u);
  EXPECT_EQ(p.by_class[cls_index(OpClass::kSync)].op_ms.size(), 32u);
  EXPECT_EQ(p.by_class[cls_index(OpClass::kNetwork)].ops, 0u);
}

TEST(ProgramTest, MixSplitsPopulationBetweenProgramsAndStatisticalShare) {
  const Scenario s = Scenario::program_storm(200, 2);
  const FleetReport r = run_cluster(s);
  EXPECT_EQ(r.admitted, 200);
  int program_tenants = 0;
  for (const auto& [name, p] : r.by_program) {
    (void)name;
    program_tenants += p.tenants;
  }
  // The -1 share keeps a statistical control population in the same run.
  EXPECT_GT(program_tenants, 0);
  EXPECT_LT(program_tenants, r.admitted);
  const std::string text = r.to_text();
  EXPECT_NE(text.find("programs: "), std::string::npos);
  EXPECT_NE(text.find("kv-server"), std::string::npos);
  EXPECT_NE(text.find("program SLO: per-op p99 within"), std::string::npos);
  EXPECT_NE(text.find("[SLO PASS]"), std::string::npos);
}

TEST(ProgramTest, StatisticalRunsRenderNoProgramSection) {
  Scenario s = Scenario::program_storm(40, 2);
  s.program_mix.clear();
  s.op_slo_ms = 0;
  const FleetReport r = run_cluster(s);
  EXPECT_TRUE(r.by_program.empty());
  EXPECT_EQ(r.to_text().find("programs: "), std::string::npos);
}

// --- Ftrace differential -----------------------------------------------------

TEST(ProgramTest, LogWriterLightsUpFsyncKernelFunctionsOverControl) {
  // Same storm twice: once with every tenant interpreting log-writer, once
  // purely statistical (kCpu phases never fsync). The program run must pump
  // the fsync expansion (ext4_sync_file et al.) far past whatever the boot
  // traces alone contribute.
  Scenario prog = one_program(40, 1, kProgLogWriter);
  Scenario ctrl = prog;
  ctrl.program_mix.clear();
  ctrl.op_slo_ms = 0;

  Cluster pc(prog.cluster);
  pc.run(prog);
  auto& pk = pc.host(0).kernel();
  const auto fid = pk.registry().id_of("ext4_sync_file");
  const std::uint64_t prog_hits = pk.ftrace().count_of(fid);

  Cluster cc(ctrl.cluster);
  cc.run(ctrl);
  auto& ck = cc.host(0).kernel();
  const std::uint64_t ctrl_hits =
      ck.ftrace().count_of(ck.registry().id_of("ext4_sync_file"));

  EXPECT_GT(prog_hits, 0u);
  // 40 tenants x 32 fsync ops each dwarf the control's boot-trace residue.
  EXPECT_GT(prog_hits, ctrl_hits + 1000u);
}

// --- Chaos composition -------------------------------------------------------

TEST(ProgramTest, PartitionStallsInFlightProgramNetworkOps) {
  // kv-server tenants hammer the NIC; a partition over host 0 freezes wire
  // progress, so stalled completions show up in the chaos rollup and the
  // network op tail stretches past the fault-free control's.
  Scenario s = one_program(150, 2, kProgKvServer);
  fleet::ClusterTopology::Rack r0{"r0", {0, 1}};
  s.cluster.racks = {r0};
  Fault part;
  part.kind = Fault::Kind::kPartition;
  part.time = sim::millis(120);
  part.rack = "r0";
  part.duration = sim::millis(30);
  s.faults.timed.push_back(part);

  Scenario ctrl = one_program(150, 2, kProgKvServer);
  ctrl.cluster.racks = {r0};

  const FleetReport faulted = run_cluster(s);
  const FleetReport control = run_cluster(ctrl);
  EXPECT_GT(faulted.nic_stalls, 0);
  const auto& fp = faulted.by_program.at("kv-server");
  const auto& cp = control.by_program.at("kv-server");
  const std::size_t net = cls_index(OpClass::kNetwork);
  ASSERT_FALSE(fp.by_class[net].op_ms.empty());
  EXPECT_GT(fp.by_class[net].op_ms.percentile(99.9),
            cp.by_class[net].op_ms.percentile(99.9));
  // Non-network classes never touch the wire: the partition must not stall
  // them (kv-server's file reads stay cache/NVMe-bound).
  EXPECT_EQ(fp.by_class[cls_index(OpClass::kFile)].ops,
            cp.by_class[cls_index(OpClass::kFile)].ops);
}

TEST(ProgramTest, CrashRestartsVictimProgramsFromTheTop) {
  Scenario s = one_program(120, 3, kProgLogWriter);
  Fault crash;
  crash.kind = Fault::Kind::kCrash;
  crash.time = sim::millis(150);
  crash.host = 0;
  crash.restart_delay = sim::millis(25);
  s.faults.timed.push_back(crash);

  const FleetReport r = run_cluster(s);
  EXPECT_GT(r.crash_victims, 0);
  EXPECT_GT(r.crash_readmitted, 0);
  const auto& p = r.by_program.at("log-writer");
  // Distinct tenants, not boots: crash re-admissions inflate `admitted`
  // (one admission per life) but a victim that reboots counts once — it
  // loses its program cursor, not its identity.
  EXPECT_GT(r.admitted, 120);
  EXPECT_EQ(p.tenants, 120);
  // Re-run from the top means every completed tenant produced one full
  // pass (32 fsync events) in its final life, and pre-crash partial runs
  // only add samples on top of that floor.
  EXPECT_GE(p.by_class[cls_index(OpClass::kSync)].op_ms.size(),
            static_cast<std::size_t>(r.completed) * 32u);
  // And the whole composition stays reproducible.
  EXPECT_EQ(run_cluster(s).to_text(), r.to_text());
}

// --- Determinism -------------------------------------------------------------

TEST(ProgramTest, ProgramStormIsByteIdenticalAcrossRunsAndThreads) {
  Scenario s = Scenario::program_storm(300, 4);
  const std::string first = run_cluster(s).to_text();
  EXPECT_EQ(run_cluster(s).to_text(), first);
  for (const int threads : {2, 8}) {
    Scenario st = s;
    st.threads = threads;
    EXPECT_EQ(run_cluster(st).to_text(), first) << "threads=" << threads;
  }
}

}  // namespace
