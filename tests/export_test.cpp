// Tests for CSV export of figure results (core/export).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/export.h"

namespace {

class ExportFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per process: ctest runs each TEST in its own process, in
    // parallel, so a shared directory would race create/remove_all.
    dir_ = std::filesystem::temp_directory_path() /
           ("isoplat_export_test_" + std::to_string(getpid()));
    std::filesystem::create_directories(dir_);
    setenv("ISOPLAT_RESULTS_DIR", dir_.c_str(), 1);
  }
  void TearDown() override {
    unsetenv("ISOPLAT_RESULTS_DIR");
    std::filesystem::remove_all(dir_);
  }

  std::string read_file(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }

  std::filesystem::path dir_;
};

TEST_F(ExportFixture, DisabledWithoutEnvVar) {
  unsetenv("ISOPLAT_RESULTS_DIR");
  EXPECT_FALSE(core::results_dir_from_env().has_value());
  EXPECT_FALSE(core::export_bars("x", {}, "ms").has_value());
}

TEST_F(ExportFixture, EnvVarEnablesExport) {
  ASSERT_TRUE(core::results_dir_from_env().has_value());
  EXPECT_EQ(*core::results_dir_from_env(), dir_.string());
}

TEST_F(ExportFixture, BarsRoundTrip) {
  std::vector<core::Bar> bars = {
      {"native", 100.5, 2.5, false, ""},
      {"firecracker", 0.0, 0.0, true, "no extra disk"},
  };
  const auto path = core::export_bars("test_bars", bars, "ms");
  ASSERT_TRUE(path.has_value());
  const std::string csv = read_file(*path);
  EXPECT_NE(csv.find("platform,mean_ms,stddev,excluded,reason"),
            std::string::npos);
  EXPECT_NE(csv.find("native,100.5"), std::string::npos);
  EXPECT_NE(csv.find("firecracker"), std::string::npos);
  EXPECT_NE(csv.find("no extra disk"), std::string::npos);
}

TEST_F(ExportFixture, CdfsContainMonotonicFractions) {
  core::CdfSeries series;
  series.platform = "docker";
  for (int i = 1; i <= 50; ++i) {
    series.samples_ms.add(static_cast<double>(i));
  }
  const auto path = core::export_cdfs("test_cdf", {series});
  ASSERT_TRUE(path.has_value());
  const std::string csv = read_file(*path);
  EXPECT_NE(csv.find("platform,value_ms,fraction"), std::string::npos);
  EXPECT_NE(csv.find("docker,"), std::string::npos);
}

TEST_F(ExportFixture, CurvesContainAllPoints) {
  core::Curve curve;
  curve.platform = "qemu";
  curve.x = {10, 20};
  curve.y = {1.5, 2.5};
  curve.yerr = {0.1, 0.2};
  const auto path = core::export_curves("test_curve", {curve}, "threads", "tps");
  ASSERT_TRUE(path.has_value());
  const std::string csv = read_file(*path);
  EXPECT_NE(csv.find("threads"), std::string::npos);
  EXPECT_NE(csv.find("qemu,10.00,1.5000,0.1000"), std::string::npos);
  EXPECT_NE(csv.find("qemu,20.00,2.5000,0.2000"), std::string::npos);
}

TEST_F(ExportFixture, HapExportsScores) {
  hap::HapScore score;
  score.platform = "osv";
  score.distinct_functions = 88;
  score.total_invocations = 1000;
  score.hap_breadth = 88;
  score.extended_hap = 10.16;
  const auto path = core::export_hap("test_hap", {score});
  ASSERT_TRUE(path.has_value());
  const std::string csv = read_file(*path);
  EXPECT_NE(csv.find("osv,88,1000,88.0,10.1600"), std::string::npos);
}

}  // namespace
