// Tests for the sim module: virtual clock, RNG determinism, distributions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "sim/clock.h"
#include "sim/distribution.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace {

using sim::Clock;
using sim::DurationDist;
using sim::Nanos;
using sim::Rng;
using sim::ZipfianGenerator;

TEST(TimeTest, UnitConstructors) {
  EXPECT_EQ(sim::micros(1), 1'000);
  EXPECT_EQ(sim::millis(1), 1'000'000);
  EXPECT_EQ(sim::seconds(1), 1'000'000'000);
  EXPECT_EQ(sim::millis(0.5), 500'000);
}

TEST(TimeTest, UnitExtractors) {
  EXPECT_DOUBLE_EQ(sim::to_millis(sim::millis(42)), 42.0);
  EXPECT_DOUBLE_EQ(sim::to_seconds(sim::seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(sim::to_micros(1500), 1.5);
}

TEST(TimeTest, FormatPicksUnit) {
  EXPECT_EQ(sim::format_duration(500), "500 ns");
  EXPECT_EQ(sim::format_duration(sim::micros(1.5)), "1.500 us");
  EXPECT_EQ(sim::format_duration(sim::millis(20)), "20.000 ms");
  EXPECT_EQ(sim::format_duration(sim::seconds(1.25)), "1.250 s");
}

TEST(ClockTest, StartsAtZeroAndAdvances) {
  Clock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.advance(100);
  clock.advance(50);
  EXPECT_EQ(clock.now(), 150);
}

TEST(ClockTest, RejectsNegativeAdvance) {
  Clock clock;
  EXPECT_THROW(clock.advance(-1), std::invalid_argument);
}

TEST(ClockTest, AdvanceToAbsoluteTime) {
  Clock clock;
  clock.advance_to(1'000);
  EXPECT_EQ(clock.now(), 1'000);
  EXPECT_THROW(clock.advance_to(500), std::invalid_argument);
}

TEST(ClockTest, ZeroCostIsAllowed) {
  Clock clock;
  clock.advance(0);
  EXPECT_EQ(clock.now(), 0);
}

TEST(ClockTest, ScopedTimerMeasuresElapsed) {
  Clock clock;
  sim::ScopedTimer timer(clock);
  clock.advance(sim::millis(3));
  EXPECT_EQ(timer.elapsed(), sim::millis(3));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += (a.next_u64() == b.next_u64());
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1'000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(5, 4), std::invalid_argument);
}

TEST(RngTest, NormalMomentsRoughlyMatch) {
  Rng rng(123);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(55);
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    sum += rng.exponential(0.5);  // mean 2
  }
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(RngTest, ExponentialRejectsNonPositiveLambda) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(RngTest, ParetoAtLeastScale) {
  Rng rng(77);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_GE(rng.pareto(3.0, 2.0), 3.0);
  }
}

TEST(RngTest, ChanceProbability) {
  Rng rng(31);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    hits += rng.chance(0.25);
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent(99);
  Rng child = parent.fork();
  // Child must not replay the parent's stream.
  Rng parent_copy(99);
  parent_copy.next_u64();  // align with parent post-fork state
  EXPECT_NE(child.next_u64(), parent_copy.next_u64());
}

TEST(ZipfianTest, HotKeysDominate) {
  Rng rng(2024);
  ZipfianGenerator zipf(10'000, 0.99);
  int in_top_100 = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    if (zipf.next(rng) < 100) {
      ++in_top_100;
    }
  }
  // With theta=0.99 over 10k items the top 1% draws well over a third of
  // accesses; uniform would give 1%.
  EXPECT_GT(static_cast<double>(in_top_100) / n, 0.35);
}

TEST(ZipfianTest, SamplesWithinRange) {
  Rng rng(5);
  ZipfianGenerator zipf(100, 0.99);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(zipf.next(rng), 100u);
  }
}

TEST(ZipfianTest, RejectsEmptyDomain) {
  EXPECT_THROW(ZipfianGenerator(0), std::invalid_argument);
}

TEST(DurationDistTest, ConstantAlwaysSame) {
  Rng rng(3);
  const auto d = DurationDist::constant(sim::micros(5));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(d.sample(rng), sim::micros(5));
  }
  EXPECT_EQ(d.mean(), sim::micros(5));
}

TEST(DurationDistTest, NormalClampsAtZero) {
  Rng rng(3);
  const auto d = DurationDist::normal(10, 1'000'000);
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_GE(d.sample(rng), 0);
  }
}

TEST(DurationDistTest, LognormalMedianParameterization) {
  Rng rng(17);
  const auto d = DurationDist::lognormal(sim::millis(100), 0.1);
  std::vector<Nanos> samples;
  for (int i = 0; i < 20'000; ++i) {
    samples.push_back(d.sample(rng));
  }
  std::sort(samples.begin(), samples.end());
  const double median = static_cast<double>(samples[samples.size() / 2]);
  EXPECT_NEAR(median / sim::millis(100), 1.0, 0.02);
}

TEST(DurationDistTest, ExponentialMeanMatches) {
  Rng rng(21);
  const auto d = DurationDist::exponential(sim::micros(50));
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(d.sample(rng));
  }
  EXPECT_NEAR(sum / n / sim::micros(50), 1.0, 0.03);
}

TEST(DurationDistTest, InvalidParametersThrow) {
  EXPECT_THROW(DurationDist::constant(-1), std::invalid_argument);
  EXPECT_THROW(DurationDist::normal(-1, 0), std::invalid_argument);
  EXPECT_THROW(DurationDist::lognormal(0, 0.1), std::invalid_argument);
  EXPECT_THROW(DurationDist::exponential(0), std::invalid_argument);
}

}  // namespace
