// Tests for the HAP study: EPSS model properties and the Section 4
// findings (24-28) over the full platform lineup.
#include <gtest/gtest.h>

#include <map>

#include "core/host_system.h"
#include "hap/epss.h"
#include "hap/hap.h"
#include "platforms/factory.h"

namespace {

using hap::EpssModel;
using hap::HapExperiment;
using platforms::PlatformFactory;
using platforms::PlatformId;

TEST(EpssTest, ScoresAreBoundedProbabilities) {
  EpssModel epss;
  hostk::KernelFunctionRegistry registry;
  for (std::size_t i = 0; i < registry.size(); ++i) {
    const double s = epss.score(registry.function(static_cast<hostk::FunctionId>(i)));
    EXPECT_GE(s, 0.0);
    EXPECT_LT(s, 1.0);
  }
}

TEST(EpssTest, Deterministic) {
  EpssModel epss;
  hostk::KernelFunctionRegistry registry;
  const auto& fn = registry.function(registry.id_of("tcp_sendmsg"));
  EXPECT_DOUBLE_EQ(epss.score(fn), epss.score(fn));
}

TEST(EpssTest, NetworkFunctionsScoreAboveTimekeeping) {
  EpssModel epss;
  hostk::KernelFunctionRegistry registry;
  double net_sum = 0.0, time_sum = 0.0;
  const auto net_fns = registry.functions_in(hostk::Subsystem::kNet);
  const auto time_fns = registry.functions_in(hostk::Subsystem::kTime);
  for (const auto id : net_fns) {
    net_sum += epss.score(registry.function(id));
  }
  for (const auto id : time_fns) {
    time_sum += epss.score(registry.function(id));
  }
  EXPECT_GT(net_sum / static_cast<double>(net_fns.size()),
            time_sum / static_cast<double>(time_fns.size()));
}

struct HapFixture : public ::testing::Test {
  core::HostSystem host;
  sim::Rng rng{404};
  HapExperiment experiment;

  std::map<PlatformId, hap::HapScore> measure(std::initializer_list<PlatformId> ids) {
    std::map<PlatformId, hap::HapScore> scores;
    for (const auto id : ids) {
      auto p = PlatformFactory::create(id, host);
      scores[id] = experiment.measure(*p, rng);
    }
    return scores;
  }
};

TEST_F(HapFixture, Finding24_FirecrackerWidestInterface) {
  const auto scores =
      measure({PlatformId::kFirecracker, PlatformId::kQemuKvm,
               PlatformId::kCloudHypervisor, PlatformId::kDocker,
               PlatformId::kKataContainers, PlatformId::kGvisor,
               PlatformId::kOsvQemu, PlatformId::kLxc});
  const auto& fc = scores.at(PlatformId::kFirecracker);
  for (const auto& [id, score] : scores) {
    if (id != PlatformId::kFirecracker) {
      EXPECT_GT(fc.distinct_functions, score.distinct_functions)
          << score.platform;
    }
  }
}

TEST_F(HapFixture, Finding25_CloudHypervisorVeryFew) {
  const auto scores = measure({PlatformId::kCloudHypervisor,
                               PlatformId::kQemuKvm, PlatformId::kFirecracker,
                               PlatformId::kDocker});
  const auto& ch = scores.at(PlatformId::kCloudHypervisor);
  EXPECT_LT(ch.distinct_functions,
            scores.at(PlatformId::kQemuKvm).distinct_functions / 2);
  EXPECT_LT(ch.distinct_functions,
            scores.at(PlatformId::kDocker).distinct_functions);
}

TEST_F(HapFixture, Finding26_SecureContainersHigh) {
  const auto scores =
      measure({PlatformId::kGvisor, PlatformId::kKataContainers,
               PlatformId::kDocker, PlatformId::kLxc});
  EXPECT_GT(scores.at(PlatformId::kGvisor).distinct_functions,
            scores.at(PlatformId::kDocker).distinct_functions);
  EXPECT_GT(scores.at(PlatformId::kKataContainers).distinct_functions,
            scores.at(PlatformId::kLxc).distinct_functions);
}

TEST_F(HapFixture, Finding27_OsvSparingHostUse) {
  const auto scores = measure({PlatformId::kOsvQemu, PlatformId::kQemuKvm,
                               PlatformId::kDocker, PlatformId::kLxc,
                               PlatformId::kCloudHypervisor});
  const auto& osv = scores.at(PlatformId::kOsvQemu);
  for (const auto& [id, score] : scores) {
    if (id != PlatformId::kOsvQemu) {
      EXPECT_LE(osv.distinct_functions, score.distinct_functions)
          << score.platform;
    }
  }
}

TEST_F(HapFixture, Conclusion8_ContainersCloselyFollowOsv) {
  const auto scores = measure({PlatformId::kOsvQemu, PlatformId::kDocker,
                               PlatformId::kFirecracker});
  const double osv = static_cast<double>(
      scores.at(PlatformId::kOsvQemu).distinct_functions);
  const double docker = static_cast<double>(
      scores.at(PlatformId::kDocker).distinct_functions);
  const double fc = static_cast<double>(
      scores.at(PlatformId::kFirecracker).distinct_functions);
  // Containers are much closer to OSv than to the top of the range.
  EXPECT_LT(docker - osv, fc - docker + (docker - osv));
  EXPECT_LT(docker, fc * 0.8);
}

TEST_F(HapFixture, ExtendedHapTracksBreadthButWeighs) {
  auto fc = PlatformFactory::create(PlatformId::kFirecracker, host);
  auto osv = PlatformFactory::create(PlatformId::kOsvQemu, host);
  const auto fc_score = experiment.measure(*fc, rng);
  const auto osv_score = experiment.measure(*osv, rng);
  EXPECT_GT(fc_score.extended_hap, osv_score.extended_hap);
  // Extended scores are sums of per-function probabilities: bounded by
  // breadth and positive.
  EXPECT_LT(fc_score.extended_hap,
            static_cast<double>(fc_score.distinct_functions));
  EXPECT_GT(osv_score.extended_hap, 0.0);
}

TEST_F(HapFixture, SubsystemBreakdownSumsToTotal) {
  auto qemu = PlatformFactory::create(PlatformId::kQemuKvm, host);
  const auto score = experiment.measure(*qemu, rng);
  std::size_t total = 0;
  for (const auto& [subsystem, count] : score.by_subsystem) {
    total += count;
  }
  EXPECT_EQ(total, score.distinct_functions);
}

TEST_F(HapFixture, KvmSubsystemOnlyForVirtualizedPlatforms) {
  auto docker = PlatformFactory::create(PlatformId::kDocker, host);
  auto qemu = PlatformFactory::create(PlatformId::kQemuKvm, host);
  const auto d = experiment.measure(*docker, rng);
  const auto q = experiment.measure(*qemu, rng);
  const auto docker_kvm = d.by_subsystem.find(hostk::Subsystem::kKvm);
  EXPECT_TRUE(docker_kvm == d.by_subsystem.end() || docker_kvm->second == 0);
  EXPECT_GT(q.by_subsystem.at(hostk::Subsystem::kKvm), 10u);
}

TEST_F(HapFixture, MeasurementIsRepeatable) {
  auto p1 = PlatformFactory::create(PlatformId::kDocker, host);
  sim::Rng r1(7), r2(7);
  const auto a = experiment.measure(*p1, r1);
  const auto b = experiment.measure(*p1, r2);
  EXPECT_EQ(a.distinct_functions, b.distinct_functions);
  EXPECT_EQ(a.total_invocations, b.total_invocations);
  // Summation order over the trace's hash map may differ run-to-run;
  // the value itself is deterministic to floating-point accumulation.
  EXPECT_NEAR(a.extended_hap, b.extended_hap, 1e-9);
}

}  // namespace
