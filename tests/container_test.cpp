// Tests for the container building blocks: namespaces, cgroups, init
// systems, storage drivers, OSv application constraints, and the KSM
// density model's interaction with cgroup limits.
#include <gtest/gtest.h>

#include "container/cgroups.h"
#include "container/init_system.h"
#include "container/namespaces.h"
#include "container/runtime.h"
#include "hostk/host_kernel.h"
#include "stats/summary.h"
#include "unikernel/osv.h"

namespace {

using container::Cgroup;
using container::CgroupLimits;
using container::CgroupVersion;
using container::InitKind;
using container::NamespaceKind;
using container::NamespaceSet;

struct Fixture : public ::testing::Test {
  hostk::HostKernel kernel;
  sim::Rng rng{911};
};

TEST_F(Fixture, RuncDefaultNamespaces) {
  const auto ns = NamespaceSet::runc_default();
  EXPECT_EQ(ns.size(), 6u);
  EXPECT_TRUE(ns.contains(NamespaceKind::kPid));
  EXPECT_TRUE(ns.contains(NamespaceKind::kNet));
  EXPECT_TRUE(ns.contains(NamespaceKind::kMnt));
  // Rootful runc does not unshare the user namespace by default.
  EXPECT_FALSE(ns.contains(NamespaceKind::kUser));
}

TEST_F(Fixture, LxcUnprivilegedAddsUserNamespace) {
  const auto ns = NamespaceSet::lxc_unprivileged();
  EXPECT_TRUE(ns.contains(NamespaceKind::kUser));
  EXPECT_EQ(ns.size(), 7u);
}

TEST_F(Fixture, NetworkNamespaceDominatesSetupCost) {
  const auto timeline = NamespaceSet::runc_default().setup_timeline();
  sim::Nanos net_cost = 0, other_max = 0;
  for (const auto& stage : timeline.stages()) {
    if (stage.name == "ns:net") {
      net_cost = stage.duration.mean();
    } else {
      other_max = std::max(other_max, stage.duration.mean());
    }
  }
  EXPECT_GT(net_cost, other_max * 5);
}

TEST_F(Fixture, NamespaceSetupTracesUnshareAndMounts) {
  kernel.ftrace().start();
  NamespaceSet::runc_default().record_setup(kernel, rng);
  const auto& reg = kernel.registry();
  EXPECT_GT(kernel.ftrace().count_of(reg.id_of("unshare_nsproxy_namespaces")),
            0u);
  EXPECT_GT(kernel.ftrace().count_of(reg.id_of("pivot_root")), 0u);
  EXPECT_GT(kernel.ftrace().count_of(reg.id_of("setup_net")), 0u);
}

TEST_F(Fixture, CgroupControllerWritesMatchLimits) {
  Cgroup full("/c1", CgroupVersion::kV2,
              CgroupLimits{.cpu_shares = 512.0, .memory_max = 1ull << 30,
                           .pids_max = 100, .io_weight = 50.0});
  EXPECT_EQ(full.controller_writes(), 4u);
  Cgroup sparse("/c2", CgroupVersion::kV2, CgroupLimits{});
  EXPECT_EQ(sparse.controller_writes(), 0u);
}

TEST_F(Fixture, CgroupV2SetupCheaperThanV1) {
  const CgroupLimits limits{.cpu_shares = 512.0, .memory_max = 1ull << 30,
                            .pids_max = {}, .io_weight = {}};
  Cgroup v1("/a", CgroupVersion::kV1, limits);
  Cgroup v2("/b", CgroupVersion::kV2, limits);
  EXPECT_LT(v2.setup_timeline().mean_total(), v1.setup_timeline().mean_total());
}

TEST_F(Fixture, CgroupMemoryChargeEnforcesLimit) {
  Cgroup cg("/m", CgroupVersion::kV2,
            CgroupLimits{.cpu_shares = {}, .memory_max = 1000,
                         .pids_max = {}, .io_weight = {}});
  EXPECT_TRUE(cg.try_charge_memory(600));
  EXPECT_TRUE(cg.try_charge_memory(400));
  EXPECT_FALSE(cg.try_charge_memory(1));  // OOM boundary
  EXPECT_EQ(cg.memory_charged(), 1000u);
}

TEST_F(Fixture, UnlimitedCgroupAcceptsAnyCharge) {
  Cgroup cg("/u", CgroupVersion::kV2, CgroupLimits{});
  EXPECT_TRUE(cg.try_charge_memory(1ull << 40));
}

TEST_F(Fixture, InitSystemOrdering) {
  const auto mean_ms = [](InitKind k) {
    return sim::to_millis(container::init_system_timeline(k).mean_total());
  };
  EXPECT_LT(mean_ms(InitKind::kPatchedExit), mean_ms(InitKind::kTini));
  EXPECT_LT(mean_ms(InitKind::kTini), mean_ms(InitKind::kSystemdMini));
  EXPECT_LT(mean_ms(InitKind::kSystemdMini), mean_ms(InitKind::kSystemd));
}

TEST_F(Fixture, ShutdownOverheadSmall) {
  // Finding 16: process-termination overhead is 1-2% of end-to-end.
  for (const auto kind : {InitKind::kTini, InitKind::kSystemd,
                          InitKind::kSystemdMini, InitKind::kPatchedExit}) {
    EXPECT_LT(container::init_system_shutdown(kind).mean(), sim::millis(12));
  }
}

TEST_F(Fixture, StorageDriverNames) {
  EXPECT_EQ(container::storage_driver_name(container::StorageDriver::kZfs),
            "zfs");
  EXPECT_EQ(container::storage_driver_name(container::StorageDriver::kOverlay2),
            "overlay2");
}

TEST_F(Fixture, LxcUsesZfsAndSystemd) {
  const auto spec = container::RuntimeCatalog::lxc();
  EXPECT_EQ(spec.storage, container::StorageDriver::kZfs);
  EXPECT_EQ(spec.init, InitKind::kSystemd);
  const auto docker = container::RuntimeCatalog::runc_oci();
  EXPECT_EQ(docker.storage, container::StorageDriver::kOverlay2);
  EXPECT_EQ(docker.init, InitKind::kTini);
}

TEST_F(Fixture, UnprivilegedLxcUsesCgroupsV2) {
  // Section 2.2.2: LXC runs unprivileged containers on the newer v2.
  const auto spec = container::RuntimeCatalog::lxc_unprivileged();
  EXPECT_EQ(spec.cgroup_version, CgroupVersion::kV2);
  EXPECT_TRUE(spec.namespaces.contains(NamespaceKind::kUser));
}

// --- OSv constraints (Section 2.4.1) ---------------------------------------

TEST(OsvConstraintTest, LinkerValidatesImages) {
  const unikernel::ElfLinker linker;
  EXPECT_EQ(linker.load({.name = "redis"}), unikernel::LoadResult::kOk);
  EXPECT_EQ(linker.load({.name = "nginx", .uses_fork = true}),
            unikernel::LoadResult::kRequiresFork);
  EXPECT_EQ(linker.load({.name = "static", .position_independent = false}),
            unikernel::LoadResult::kNotRelocatable);
}

TEST(OsvConstraintTest, SyscallIsJustAFunctionCall) {
  const unikernel::ElfLinker linker;
  hostk::HostKernel kernel;
  sim::Rng rng(3);
  stats::Summary call;
  for (int i = 0; i < 500; ++i) {
    call.add(static_cast<double>(linker.call_cost(rng)));
  }
  // Far below a real user->kernel mode switch (~250ns+).
  EXPECT_LT(call.mean(), 100.0);
}

TEST(OsvConstraintTest, SchedulerPenaltyGrowsWithThreads) {
  const unikernel::OsvScheduler sched;
  EXPECT_NEAR(sched.multithread_penalty(1), 1.0, 1e-9);
  EXPECT_GT(sched.multithread_penalty(16), 1.3);
  EXPECT_GT(sched.multithread_penalty(64), sched.multithread_penalty(16));
}

TEST(OsvConstraintTest, LinkTimeScalesWithBinarySize) {
  const unikernel::ElfLinker linker;
  const auto small = linker.link_timeline({.name = "s", .binary_bytes = 1 << 20});
  const auto large =
      linker.link_timeline({.name = "l", .binary_bytes = 256ull << 20});
  EXPECT_GT(large.mean_total(), small.mean_total() * 5);
}

}  // namespace
