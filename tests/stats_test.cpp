// Tests for the stats module: summaries, percentiles, CDFs, tables.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/sample_set.h"
#include "stats/summary.h"
#include "stats/table.h"

namespace {

using stats::SampleSet;
using stats::Summary;
using stats::Table;

TEST(SummaryTest, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SummaryTest, MeanAndStddev) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(v);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryTest, SingleSampleHasZeroVariance) {
  Summary s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(SummaryTest, MergeMatchesSequential) {
  Summary a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i) * 10 + i;
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SummaryTest, MergeWithEmpty) {
  Summary a, empty;
  a.add(1.0);
  a.add(3.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  Summary c;
  c.merge(a);
  EXPECT_DOUBLE_EQ(c.mean(), mean_before);
}

TEST(SummaryTest, CoefficientOfVariation) {
  Summary s;
  s.add(9.0);
  s.add(11.0);
  EXPECT_NEAR(s.cv(), std::sqrt(2.0) / 10.0, 1e-12);
}

TEST(SampleSetTest, PercentileInterpolates) {
  SampleSet s({10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 25.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
}

TEST(SampleSetTest, PercentileSingleElement) {
  SampleSet s({42.0});
  EXPECT_DOUBLE_EQ(s.percentile(90), 42.0);
}

TEST(SampleSetTest, PercentileErrors) {
  SampleSet empty;
  EXPECT_THROW(empty.percentile(50), std::logic_error);
  SampleSet s({1.0});
  EXPECT_THROW(s.percentile(-1), std::invalid_argument);
  EXPECT_THROW(s.percentile(101), std::invalid_argument);
}

TEST(SampleSetTest, AddInvalidatesSortCache) {
  SampleSet s({5.0, 1.0});
  EXPECT_DOUBLE_EQ(s.percentile(100), 5.0);
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 9.0);
}

TEST(SampleSetTest, CdfIsMonotonic) {
  SampleSet s;
  for (int i = 100; i > 0; --i) {
    s.add(static_cast<double>(i % 17));
  }
  const auto cdf = s.cdf(20);
  ASSERT_FALSE(cdf.empty());
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GE(cdf[i].fraction, cdf[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
}

TEST(SampleSetTest, CdfAlwaysIncludesTheMaximum) {
  // Regression: the old fixed-stride down-sampling dropped the maximum
  // whenever (n-1) % step != 0, then patched it back in by exceeding the
  // requested point budget. Sweep awkward (n, max_points) combinations.
  for (const std::size_t n : {1u, 2u, 3u, 7u, 10u, 11u, 100u, 300u, 1000u}) {
    for (const std::size_t max_points : {1u, 2u, 3u, 10u, 99u, 100u}) {
      SampleSet s;
      for (std::size_t i = 0; i < n; ++i) {
        s.add(static_cast<double>(i));
      }
      const auto cdf = s.cdf(max_points);
      ASSERT_FALSE(cdf.empty());
      ASSERT_LE(cdf.size(), max_points) << "n=" << n << " m=" << max_points;
      EXPECT_DOUBLE_EQ(cdf.back().value, static_cast<double>(n - 1))
          << "n=" << n << " m=" << max_points;
      EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0)
          << "n=" << n << " m=" << max_points;
      if (max_points >= 2) {
        EXPECT_DOUBLE_EQ(cdf.front().value, 0.0)
            << "n=" << n << " m=" << max_points;
      }
      for (std::size_t i = 1; i < cdf.size(); ++i) {
        EXPECT_GT(cdf[i].fraction, cdf[i - 1].fraction);  // no duplicates
      }
    }
  }
}

TEST(SampleSetTest, FractionBelow) {
  SampleSet s({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.fraction_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.fraction_below(2.0), 0.5);
  EXPECT_DOUBLE_EQ(s.fraction_below(10.0), 1.0);
}

TEST(SampleSetTest, SummaryMatchesValues) {
  SampleSet s({1.0, 2.0, 3.0});
  const auto sum = s.summary();
  EXPECT_EQ(sum.count(), 3u);
  EXPECT_DOUBLE_EQ(sum.mean(), 2.0);
}

TEST(TableTest, TextRenderingAligns) {
  Table t({"platform", "ms"});
  t.add_row({"docker", "101.5"});
  t.add_row({"kata-containers", "612.0"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("platform"), std::string::npos);
  EXPECT_NE(text.find("kata-containers"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(TableTest, ArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TableTest, EmptyHeadersThrow) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(TableTest, CsvEscaping) {
  Table t({"name", "note"});
  t.add_row({"a,b", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::mean_pm_std(10.0, 1.5, 1), "10.0 +- 1.5");
}

}  // namespace
